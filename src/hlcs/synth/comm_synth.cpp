#include "hlcs/synth/comm_synth.hpp"

#include <algorithm>
#include <functional>
#include <numeric>
#include <string>

namespace hlcs::synth {

std::string req_port(std::size_t client) {
  return "c" + std::to_string(client) + "_req";
}
std::string sel_port(std::size_t client) {
  return "c" + std::to_string(client) + "_sel";
}
std::string args_port(std::size_t client) {
  return "c" + std::to_string(client) + "_args";
}
std::string grant_port(std::size_t client) {
  return "c" + std::to_string(client) + "_grant";
}
std::string ret_port(std::size_t client) {
  return "c" + std::to_string(client) + "_ret";
}
std::string var_port(const ObjectDesc& desc, std::size_t var_index) {
  return "var_" + desc.vars().at(var_index).name;
}

std::uint64_t pack_args(const MethodDesc& m,
                        const std::vector<std::uint64_t>& args) {
  HLCS_ASSERT(args.size() == m.args.size(), "pack_args: count mismatch");
  std::uint64_t packed = 0;
  unsigned offset = 0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    packed |= (args[i] & ExprArena::mask(m.args[i].width)) << offset;
    offset += m.args[i].width;
  }
  return packed;
}

std::vector<std::uint64_t> unpack_args(const MethodDesc& m,
                                       std::uint64_t packed) {
  std::vector<std::uint64_t> args;
  args.reserve(m.args.size());
  unsigned offset = 0;
  for (const ArgDesc& a : m.args) {
    args.push_back((packed >> offset) & ExprArena::mask(a.width));
    offset += a.width;
  }
  return args;
}

namespace {

struct Builder {
  const ObjectDesc& d;
  const SynthOptions& opt;
  Netlist nl;
  ExprArena& A;

  unsigned sel_w, args_w, ret_w, idx_w;
  NetId rst;
  std::vector<NetId> req, sel, args;        // inputs, per client
  std::vector<NetId> grant, ret;            // outputs, per client
  std::vector<NetId> var_q, var_next;       // per state variable
  std::vector<NetId> elig;                  // per client

  Builder(const ObjectDesc& desc, const SynthOptions& options)
      : d(desc),
        opt(options),
        nl(desc.name() + "_rtl"),
        A(nl.arena()),
        sel_w(desc.sel_width()),
        args_w(desc.args_width()),
        ret_w(desc.ret_width()),
        idx_w(index_width(options.clients)) {}

  static unsigned index_width(std::size_t n) {
    unsigned w = 1;
    while ((1ull << w) < n) ++w;
    return w;
  }

  ExprId one() { return A.cst(1, 1); }
  ExprId zero() { return A.cst(0, 1); }

  /// Map an object expression into the netlist for client `i`: Vars
  /// become state-register nets, Args become slices of the client's
  /// packed argument port.
  ExprId import_for_client(ExprId src, std::size_t i, const MethodDesc& m) {
    return clone_expr(
        d.arena(), src, A,
        [&](std::uint32_t var, unsigned) { return nl.net_ref(var_q[var]); },
        [&](std::uint32_t arg, unsigned w) {
          unsigned offset = 0;
          for (std::uint32_t j = 0; j < arg; ++j) offset += m.args[j].width;
          return A.slice(nl.net_ref(args[i]), offset, w);
        });
  }

  void make_ports() {
    rst = nl.add_net("rst", 1);
    nl.mark_input(rst);
    for (std::size_t i = 0; i < opt.clients; ++i) {
      req.push_back(nl.add_net(req_port(i), 1));
      sel.push_back(nl.add_net(sel_port(i), sel_w));
      args.push_back(nl.add_net(args_port(i), args_w));
      nl.mark_input(req.back());
      nl.mark_input(sel.back());
      nl.mark_input(args.back());
      grant.push_back(nl.add_net(grant_port(i), 1));
      ret.push_back(nl.add_net(ret_port(i), ret_w));
      nl.mark_output(grant.back());
      nl.mark_output(ret.back());
    }
    for (std::size_t v = 0; v < d.vars().size(); ++v) {
      var_q.push_back(nl.add_net(var_port(d, v), d.vars()[v].width));
      var_next.push_back(
          nl.add_net(var_port(d, v) + "_next", d.vars()[v].width));
      nl.add_reg(var_q[v], var_next[v], d.vars()[v].init);
      nl.mark_output(var_q[v]);
    }
  }

  /// Eligibility: request present, selector addresses a real method, and
  /// that method's guard holds.
  void make_eligibility() {
    for (std::size_t i = 0; i < opt.clients; ++i) {
      // Mux chain over the selector, default 0 (invalid selector).
      ExprId g = zero();
      for (std::size_t m = d.methods().size(); m-- > 0;) {
        const MethodDesc& md = d.methods()[m];
        ExprId this_guard = md.guard == kNoExpr
                                ? one()
                                : import_for_client(md.guard, i, md);
        ExprId is_m = A.bin(ExprOp::Eq, nl.net_ref(sel[i]),
                            A.cst(static_cast<std::uint64_t>(m), sel_w));
        g = A.mux(is_m, this_guard, g);
      }
      NetId e = nl.add_net("c" + std::to_string(i) + "_elig", 1);
      nl.add_comb(e, A.bin(ExprOp::And, nl.net_ref(req[i]), g));
      elig.push_back(e);
    }
  }

  /// Chain priority encoder over client order `order`; writes grant nets.
  /// Reset forces all grants to 0.
  void priority_encode(const std::vector<std::size_t>& order,
                       std::vector<ExprId>& grant_expr) {
    ExprId taken = zero();
    grant_expr.assign(opt.clients, kNoExpr);
    for (std::size_t i : order) {
      ExprId e = nl.net_ref(elig[i]);
      grant_expr[i] = A.bin(ExprOp::And, e, A.un(ExprOp::Not, taken));
      taken = A.bin(ExprOp::Or, taken, e);
    }
  }

  void finish_grants(const std::vector<ExprId>& grant_expr) {
    ExprId not_rst = A.un(ExprOp::Not, nl.net_ref(rst));
    for (std::size_t i = 0; i < opt.clients; ++i) {
      nl.add_comb(grant[i], A.bin(ExprOp::And, grant_expr[i], not_rst));
    }
  }

  void make_arbiter_static_priority() {
    std::vector<int> prio = opt.priorities;
    if (prio.empty()) {
      // Default: client 0 highest.
      for (std::size_t i = 0; i < opt.clients; ++i) {
        prio.push_back(static_cast<int>(opt.clients - i));
      }
    }
    HLCS_ASSERT(prio.size() == opt.clients,
                "priorities size must equal client count");
    std::vector<std::size_t> order(opt.clients);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                     std::size_t b) {
      return prio[a] > prio[b];
    });
    std::vector<ExprId> ge;
    priority_encode(order, ge);
    finish_grants(ge);
  }

  void make_arbiter_round_robin() {
    // last-grant register.
    NetId last_q = nl.add_net("rr_last", idx_w);
    NetId last_d = nl.add_net("rr_last_next", idx_w);
    nl.add_reg(last_q, last_d,
               static_cast<std::uint64_t>(opt.clients - 1));

    // First pass: eligible clients with index > last.
    std::vector<ExprId> cand1(opt.clients);
    ExprId any1 = zero();
    for (std::size_t i = 0; i < opt.clients; ++i) {
      ExprId gt = A.bin(ExprOp::Gt, A.cst(i, idx_w), nl.net_ref(last_q));
      cand1[i] = A.bin(ExprOp::And, nl.net_ref(elig[i]), gt);
      any1 = A.bin(ExprOp::Or, any1, cand1[i]);
    }
    // Priority-encode both passes in index order, select by any1.
    std::vector<ExprId> ge(opt.clients);
    ExprId taken1 = zero(), taken0 = zero();
    for (std::size_t i = 0; i < opt.clients; ++i) {
      ExprId g1 = A.bin(ExprOp::And, cand1[i], A.un(ExprOp::Not, taken1));
      taken1 = A.bin(ExprOp::Or, taken1, cand1[i]);
      ExprId e0 = nl.net_ref(elig[i]);
      ExprId g0 = A.bin(ExprOp::And, e0, A.un(ExprOp::Not, taken0));
      taken0 = A.bin(ExprOp::Or, taken0, e0);
      ge[i] = A.mux(any1, g1, g0);
    }
    finish_grants(ge);

    // last_next: granted index, else hold; reset to clients-1.
    ExprId granted_idx = A.cst(0, idx_w);
    ExprId granted_any = zero();
    for (std::size_t i = 0; i < opt.clients; ++i) {
      granted_idx = A.mux(nl.net_ref(grant[i]), A.cst(i, idx_w), granted_idx);
      granted_any = A.bin(ExprOp::Or, granted_any, nl.net_ref(grant[i]));
    }
    ExprId hold = A.mux(granted_any, granted_idx, nl.net_ref(last_q));
    nl.add_comb(last_d, A.mux(nl.net_ref(rst),
                              A.cst(opt.clients - 1, idx_w), hold));
  }

  void make_arbiter_fifo() {
    const unsigned aw = opt.fifo_age_width;
    HLCS_ASSERT(aw >= 2 && aw <= 32, "fifo_age_width out of range");
    std::vector<NetId> age_q(opt.clients), age_d(opt.clients);
    for (std::size_t i = 0; i < opt.clients; ++i) {
      age_q[i] = nl.add_net("c" + std::to_string(i) + "_age", aw);
      age_d[i] = nl.add_net("c" + std::to_string(i) + "_age_next", aw);
      nl.add_reg(age_q[i], age_d[i], 0);
    }
    // Oldest eligible wins; equal ages break toward the lower index.
    std::vector<ExprId> ge(opt.clients);
    for (std::size_t i = 0; i < opt.clients; ++i) {
      ExprId beaten = zero();
      for (std::size_t j = 0; j < opt.clients; ++j) {
        if (j == i) continue;
        ExprId older = A.bin(ExprOp::Gt, nl.net_ref(age_q[j]),
                             nl.net_ref(age_q[i]));
        ExprId tie_wins =
            j < i ? A.bin(ExprOp::Eq, nl.net_ref(age_q[j]),
                          nl.net_ref(age_q[i]))
                  : zero();
        ExprId beats = A.bin(ExprOp::And, nl.net_ref(elig[j]),
                             A.bin(ExprOp::Or, older, tie_wins));
        beaten = A.bin(ExprOp::Or, beaten, beats);
      }
      ge[i] =
          A.bin(ExprOp::And, nl.net_ref(elig[i]), A.un(ExprOp::Not, beaten));
    }
    finish_grants(ge);

    // Age update: cleared on grant / no request / reset, else saturating
    // increment while a request is pending.
    const std::uint64_t max_age = ExprArena::mask(aw);
    for (std::size_t i = 0; i < opt.clients; ++i) {
      ExprId at_max = A.bin(ExprOp::Eq, nl.net_ref(age_q[i]),
                            A.cst(max_age, aw));
      ExprId inc = A.mux(at_max, A.cst(max_age, aw),
                         A.bin(ExprOp::Add, nl.net_ref(age_q[i]),
                               A.cst(1, aw)));
      ExprId clear = A.bin(ExprOp::Or, nl.net_ref(grant[i]),
                           A.un(ExprOp::Not, nl.net_ref(req[i])));
      clear = A.bin(ExprOp::Or, clear, nl.net_ref(rst));
      nl.add_comb(age_d[i], A.mux(clear, A.cst(0, aw), inc));
    }
  }

  void make_arbiter_random() {
    HLCS_ASSERT(opt.lfsr_seed != 0, "LFSR seed must be non-zero");
    // 16-bit Fibonacci LFSR, taps 16,14,13,11 (x^16+x^14+x^13+x^11+1).
    NetId lfsr_q = nl.add_net("lfsr", 16);
    NetId lfsr_d = nl.add_net("lfsr_next", 16);
    nl.add_reg(lfsr_q, lfsr_d, opt.lfsr_seed);
    ExprId l = nl.net_ref(lfsr_q);
    ExprId fb = A.bin(
        ExprOp::Xor, A.slice(l, 0, 1),
        A.bin(ExprOp::Xor, A.slice(l, 2, 1),
              A.bin(ExprOp::Xor, A.slice(l, 3, 1), A.slice(l, 5, 1))));
    ExprId shifted = A.slice(nl.net_ref(lfsr_q), 1, 15);
    ExprId next = A.bin(ExprOp::Concat, fb, shifted);
    nl.add_comb(lfsr_d, A.mux(nl.net_ref(rst), A.cst(opt.lfsr_seed, 16), next));

    // offset = low bits of LFSR, folded into [0, clients).
    ExprId raw = A.slice(nl.net_ref(lfsr_q), 0, idx_w);
    ExprId n_c = A.cst(opt.clients, idx_w == 1 ? 2 : idx_w + 1);
    ExprId raw_w = A.zext(raw, idx_w == 1 ? 2 : idx_w + 1);
    ExprId over = A.bin(ExprOp::Ge, raw_w, n_c);
    ExprId folded =
        A.mux(over, A.slice(A.bin(ExprOp::Sub, raw_w, n_c), 0, idx_w), raw);
    NetId offset = nl.add_net("rnd_offset", idx_w);
    nl.add_comb(offset, folded);

    // Rotating rank: rank(i) = (i - offset) mod clients; min rank wins.
    const unsigned rw = idx_w + 1;
    std::vector<ExprId> rank(opt.clients);
    for (std::size_t i = 0; i < opt.clients; ++i) {
      ExprId off = A.zext(nl.net_ref(offset), rw);
      ExprId iv = A.cst(i, rw);
      ExprId wrapped = A.bin(
          ExprOp::Sub, A.bin(ExprOp::Add, iv, A.cst(opt.clients, rw)), off);
      ExprId plain = A.bin(ExprOp::Sub, iv, off);
      ExprId ge_off = A.bin(ExprOp::Ge, iv, off);
      rank[i] = A.mux(ge_off, plain, wrapped);
    }
    std::vector<ExprId> ge(opt.clients);
    for (std::size_t i = 0; i < opt.clients; ++i) {
      ExprId beaten = zero();
      for (std::size_t j = 0; j < opt.clients; ++j) {
        if (j == i) continue;
        ExprId better = A.bin(ExprOp::Lt, rank[j], rank[i]);
        beaten = A.bin(ExprOp::Or, beaten,
                       A.bin(ExprOp::And, nl.net_ref(elig[j]), better));
      }
      ge[i] =
          A.bin(ExprOp::And, nl.net_ref(elig[i]), A.un(ExprOp::Not, beaten));
    }
    finish_grants(ge);
  }

  /// Adaptive arbitration (osss::AdaptiveArbitration in RTL form):
  /// per-client age + eligible-streak counters, a contention window and
  /// a hot/cold mode register.  Aged clients (age >= starve_bound) form
  /// an absolute-priority lane (oldest wins); otherwise the hot mode
  /// keys on the eligible streak and the cold mode on the age.  Ties
  /// break toward the lower client index (the RTL stand-in for the
  /// behavioural priority/seq tie-break -- docs/CONTENTION.md).
  void make_arbiter_adaptive() {
    const unsigned aw = opt.fifo_age_width;
    HLCS_ASSERT(aw >= 2 && aw <= 32, "fifo_age_width out of range");
    const std::uint64_t max_age = ExprArena::mask(aw);
    HLCS_ASSERT(opt.adaptive_starve_bound >= 1 &&
                    opt.adaptive_starve_bound <= max_age,
                "adaptive_starve_bound must fit in fifo_age_width bits");
    const unsigned wl = opt.adaptive_window_log2;
    HLCS_ASSERT(wl >= 1 && wl <= 16, "adaptive_window_log2 out of range");
    const std::uint64_t window = std::uint64_t{1} << wl;
    HLCS_ASSERT(opt.adaptive_hot_threshold >= 1 &&
                    opt.adaptive_hot_threshold <= window,
                "adaptive_hot_threshold must be in [1, 2^window_log2]");

    std::vector<NetId> age_q(opt.clients), age_d(opt.clients);
    std::vector<NetId> str_q(opt.clients), str_d(opt.clients);
    for (std::size_t i = 0; i < opt.clients; ++i) {
      const std::string c = "c" + std::to_string(i);
      age_q[i] = nl.add_net(c + "_aage", aw);
      age_d[i] = nl.add_net(c + "_aage_next", aw);
      nl.add_reg(age_q[i], age_d[i], 0);
      str_q[i] = nl.add_net(c + "_streak", aw);
      str_d[i] = nl.add_net(c + "_streak_next", aw);
      nl.add_reg(str_q[i], str_d[i], 0);
    }
    NetId wcnt_q = nl.add_net("adp_wcnt", wl);
    NetId wcnt_d = nl.add_net("adp_wcnt_next", wl);
    nl.add_reg(wcnt_q, wcnt_d, 0);
    const unsigned hw = wl + 1;
    NetId hcnt_q = nl.add_net("adp_hcnt", hw);
    NetId hcnt_d = nl.add_net("adp_hcnt_next", hw);
    nl.add_reg(hcnt_q, hcnt_d, 0);
    NetId mode_q = nl.add_net("adp_mode", 1);
    NetId mode_d = nl.add_net("adp_mode_next", 1);
    nl.add_reg(mode_q, mode_d, 0);

    // any_elig / contended (>= 2 eligible) via a linear seen-one chain.
    ExprId any_elig = zero();
    ExprId contended = zero();
    for (std::size_t i = 0; i < opt.clients; ++i) {
      ExprId e = nl.net_ref(elig[i]);
      contended = A.bin(ExprOp::Or, contended, A.bin(ExprOp::And, any_elig, e));
      any_elig = A.bin(ExprOp::Or, any_elig, e);
    }

    // Aged lane: eligible streak (policy-caused wait) reached the bound.
    std::vector<ExprId> aged(opt.clients);
    ExprId any_aged = zero();
    for (std::size_t i = 0; i < opt.clients; ++i) {
      ExprId old_enough =
          A.bin(ExprOp::Ge, nl.net_ref(str_q[i]),
                A.cst(opt.adaptive_starve_bound, aw));
      aged[i] = A.bin(ExprOp::And, nl.net_ref(elig[i]), old_enough);
      any_aged = A.bin(ExprOp::Or, any_aged, aged[i]);
    }

    // Candidate set and per-client key: the aged lane and the hot mode
    // key on the eligible streak, the cold mode on the request age.
    ExprId use_streak = A.bin(ExprOp::Or, nl.net_ref(mode_q), any_aged);
    std::vector<ExprId> cand(opt.clients), key(opt.clients);
    for (std::size_t i = 0; i < opt.clients; ++i) {
      cand[i] = A.mux(any_aged, aged[i], nl.net_ref(elig[i]));
      key[i] = A.mux(use_streak, nl.net_ref(str_q[i]), nl.net_ref(age_q[i]));
    }

    // Max-key candidate wins; equal keys break toward the lower index.
    std::vector<ExprId> ge(opt.clients);
    for (std::size_t i = 0; i < opt.clients; ++i) {
      ExprId beaten = zero();
      for (std::size_t j = 0; j < opt.clients; ++j) {
        if (j == i) continue;
        ExprId better = A.bin(ExprOp::Gt, key[j], key[i]);
        ExprId tie_wins =
            j < i ? A.bin(ExprOp::Eq, key[j], key[i]) : zero();
        ExprId beats = A.bin(ExprOp::And, cand[j],
                             A.bin(ExprOp::Or, better, tie_wins));
        beaten = A.bin(ExprOp::Or, beaten, beats);
      }
      ge[i] = A.bin(ExprOp::And, cand[i], A.un(ExprOp::Not, beaten));
    }
    finish_grants(ge);

    // Counter updates (all saturating at the register width).
    for (std::size_t i = 0; i < opt.clients; ++i) {
      ExprId at_max = A.bin(ExprOp::Eq, nl.net_ref(age_q[i]),
                            A.cst(max_age, aw));
      ExprId inc = A.mux(at_max, A.cst(max_age, aw),
                         A.bin(ExprOp::Add, nl.net_ref(age_q[i]),
                               A.cst(1, aw)));
      ExprId clear = A.bin(ExprOp::Or, nl.net_ref(grant[i]),
                           A.un(ExprOp::Not, nl.net_ref(req[i])));
      clear = A.bin(ExprOp::Or, clear, nl.net_ref(rst));
      nl.add_comb(age_d[i], A.mux(clear, A.cst(0, aw), inc));

      ExprId s_at_max = A.bin(ExprOp::Eq, nl.net_ref(str_q[i]),
                              A.cst(max_age, aw));
      ExprId s_inc = A.mux(s_at_max, A.cst(max_age, aw),
                           A.bin(ExprOp::Add, nl.net_ref(str_q[i]),
                                 A.cst(1, aw)));
      ExprId s_clear = A.bin(ExprOp::Or, nl.net_ref(grant[i]),
                             A.un(ExprOp::Not, nl.net_ref(elig[i])));
      s_clear = A.bin(ExprOp::Or, s_clear, nl.net_ref(rst));
      nl.add_comb(str_d[i], A.mux(s_clear, A.cst(0, aw), s_inc));
    }

    // Window bookkeeping: a "step" is a cycle with any eligible client
    // (mirroring the behavioural policy, whose pick() only runs then).
    ExprId at_last = A.bin(ExprOp::Eq, nl.net_ref(wcnt_q),
                           A.cst(window - 1, wl));
    ExprId window_end = A.bin(ExprOp::And, any_elig, at_last);
    ExprId w_inc = A.mux(at_last, A.cst(0, wl),
                         A.bin(ExprOp::Add, nl.net_ref(wcnt_q), A.cst(1, wl)));
    ExprId w_hold = A.mux(any_elig, w_inc, nl.net_ref(wcnt_q));
    nl.add_comb(wcnt_d, A.mux(nl.net_ref(rst), A.cst(0, wl), w_hold));

    ExprId cont_w = A.mux(contended, A.cst(1, hw), A.cst(0, hw));
    ExprId h_sum = A.bin(ExprOp::Add, nl.net_ref(hcnt_q), cont_w);
    ExprId h_step = A.mux(window_end, A.cst(0, hw), h_sum);
    ExprId h_hold = A.mux(any_elig, h_step, nl.net_ref(hcnt_q));
    nl.add_comb(hcnt_d, A.mux(nl.net_ref(rst), A.cst(0, hw), h_hold));

    ExprId hot_next = A.bin(ExprOp::Ge, h_sum,
                            A.cst(opt.adaptive_hot_threshold, hw));
    ExprId m_step = A.mux(window_end, hot_next, nl.net_ref(mode_q));
    nl.add_comb(mode_d, A.mux(nl.net_ref(rst), zero(), m_step));
  }

  /// State next-value logic and per-client return values.
  void make_datapath() {
    for (std::size_t v = 0; v < d.vars().size(); ++v) {
      ExprId cur = nl.net_ref(var_q[v]);
      for (std::size_t i = 0; i < opt.clients; ++i) {
        for (std::size_t m = 0; m < d.methods().size(); ++m) {
          const MethodDesc& md = d.methods()[m];
          for (const AssignDesc& as : md.body) {
            if (as.var != v) continue;
            ExprId is_m = A.bin(ExprOp::Eq, nl.net_ref(sel[i]),
                                A.cst(m, sel_w));
            ExprId cond = A.bin(ExprOp::And, nl.net_ref(grant[i]), is_m);
            ExprId val = import_for_client(as.value, i, md);
            cur = A.mux(cond, val, cur);
          }
        }
      }
      ExprId rst_val = A.cst(d.vars()[v].init, d.vars()[v].width);
      nl.add_comb(var_next[v], A.mux(nl.net_ref(rst), rst_val, cur));
    }
    for (std::size_t i = 0; i < opt.clients; ++i) {
      ExprId r = A.cst(0, ret_w);
      for (std::size_t m = d.methods().size(); m-- > 0;) {
        const MethodDesc& md = d.methods()[m];
        if (md.ret == kNoExpr) continue;
        ExprId val = import_for_client(md.ret, i, md);
        if (md.ret_width < ret_w) val = A.zext(val, ret_w);
        ExprId is_m = A.bin(ExprOp::Eq, nl.net_ref(sel[i]), A.cst(m, sel_w));
        r = A.mux(is_m, val, r);
      }
      nl.add_comb(ret[i], r);
    }
  }

  Netlist build() {
    make_ports();
    make_eligibility();
    switch (opt.policy) {
      case osss::PolicyKind::StaticPriority: make_arbiter_static_priority(); break;
      case osss::PolicyKind::RoundRobin: make_arbiter_round_robin(); break;
      case osss::PolicyKind::Fifo: make_arbiter_fifo(); break;
      case osss::PolicyKind::Random: make_arbiter_random(); break;
      case osss::PolicyKind::Adaptive: make_arbiter_adaptive(); break;
    }
    make_datapath();
    nl.validate_and_order();  // fail fast if construction broke an invariant
    return std::move(nl);
  }
};

}  // namespace

Netlist synthesize(const ObjectDesc& desc, const SynthOptions& options) {
  desc.validate();
  if (options.clients < 1 || options.clients > 64) {
    throw SynthesisError("synthesize: client count must be in [1,64]");
  }
  Builder b(desc, options);
  return b.build();
}

}  // namespace hlcs::synth
