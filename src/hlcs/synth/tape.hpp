// Compiled execution engine for Netlist combinational logic.
//
// TapeProgram linearises every comb expression into a flat postorder
// bytecode tape evaluated on a value stack: no recursion, no allocation,
// no virtual dispatch on the per-settle hot path.  Within one comb,
// subexpressions shared through the arena DAG (after the optimizer's
// hash-consing CSE) are computed once into a scratch slot and re-pushed,
// so the tape length tracks the DAG size, not the expanded tree size.
//
// The program also carries the structures the event-driven simulator
// needs: per-net fanout lists (which combs read a net) in CSR form, and
// a topological level per comb so a dirty worklist can be drained in
// dependency order with plain per-level buckets.
#pragma once

#include <cstdint>
#include <vector>

#include "hlcs/synth/netlist.hpp"

namespace hlcs::synth {

enum class TapeOp : std::uint8_t {
  PushConst,  ///< push imm
  PushNet,    ///< push nets[aux]
  PushSlot,   ///< push slots[aux]
  StoreSlot,  ///< slots[aux] = pop
  // unary (replace stack top); imm = result mask unless noted
  Not,
  Neg,
  RedOr,
  RedAnd,  ///< imm = operand mask
  Slice,   ///< aux = lsb, imm = result mask
  // binary (pop rhs, replace top)
  Add, Sub, Mul,          ///< imm = result mask
  And, Or, Xor,
  Eq, Ne, Lt, Le, Gt, Ge,
  Shl,                    ///< imm = result mask
  Shr,
  Concat,                 ///< aux = width of the low (rhs) part
  // ternary: pop else/then, replace top (the selector)
  Mux,
};

struct TapeInsn {
  TapeOp op;
  std::uint32_t aux = 0;
  std::uint64_t imm = 0;
};

struct TapeComb {
  NetId target;
  std::uint32_t begin;  ///< [begin, end) into TapeProgram::code()
  std::uint32_t end;
  std::uint32_t level;  ///< 0 = reads only inputs/registers
};

/// Observability counters for NetlistSim, mirroring sim::KernelStats
/// (docs/PERF.md documents each field's meaning and expected shape).
struct NetlistStats {
  std::uint64_t settles = 0;            ///< settle() calls
  std::uint64_t full_settles = 0;       ///< settles that evaluated every comb
  std::uint64_t edges = 0;              ///< clock_edge() calls
  std::uint64_t combs_evaluated = 0;    ///< comb (re-)evaluations performed
  std::uint64_t combs_possible = 0;     ///< comb count x settles (full-settle cost)
  std::uint64_t tape_instructions = 0;  ///< bytecode instructions executed
  std::uint64_t input_changes = 0;      ///< set_input calls that changed a value
  std::uint64_t reg_changes = 0;        ///< register latches that changed Q
  std::uint64_t peak_worklist = 0;      ///< max dirty combs pending at once

  friend bool operator==(const NetlistStats&, const NetlistStats&) = default;
};

/// Evaluate one comb's tape.  `stack` and `slots` are caller-provided
/// scratch sized by TapeProgram::max_stack() / max_slots().
inline std::uint64_t tape_exec(const TapeInsn* ip, const TapeInsn* end,
                               const std::uint64_t* nets, std::uint64_t* stack,
                               std::uint64_t* slots) {
  std::uint64_t* sp = stack;
  for (; ip != end; ++ip) {
    switch (ip->op) {
      case TapeOp::PushConst: *sp++ = ip->imm; break;
      case TapeOp::PushNet: *sp++ = nets[ip->aux]; break;
      case TapeOp::PushSlot: *sp++ = slots[ip->aux]; break;
      case TapeOp::StoreSlot: slots[ip->aux] = *--sp; break;
      case TapeOp::Not: sp[-1] = ~sp[-1] & ip->imm; break;
      case TapeOp::Neg: sp[-1] = (~sp[-1] + 1) & ip->imm; break;
      case TapeOp::RedOr: sp[-1] = sp[-1] != 0; break;
      case TapeOp::RedAnd: sp[-1] = sp[-1] == ip->imm; break;
      case TapeOp::Slice: sp[-1] = (sp[-1] >> ip->aux) & ip->imm; break;
      case TapeOp::Add: --sp; sp[-1] = (sp[-1] + sp[0]) & ip->imm; break;
      case TapeOp::Sub: --sp; sp[-1] = (sp[-1] - sp[0]) & ip->imm; break;
      case TapeOp::Mul: --sp; sp[-1] = (sp[-1] * sp[0]) & ip->imm; break;
      case TapeOp::And: --sp; sp[-1] &= sp[0]; break;
      case TapeOp::Or: --sp; sp[-1] |= sp[0]; break;
      case TapeOp::Xor: --sp; sp[-1] ^= sp[0]; break;
      case TapeOp::Eq: --sp; sp[-1] = sp[-1] == sp[0]; break;
      case TapeOp::Ne: --sp; sp[-1] = sp[-1] != sp[0]; break;
      case TapeOp::Lt: --sp; sp[-1] = sp[-1] < sp[0]; break;
      case TapeOp::Le: --sp; sp[-1] = sp[-1] <= sp[0]; break;
      case TapeOp::Gt: --sp; sp[-1] = sp[-1] > sp[0]; break;
      case TapeOp::Ge: --sp; sp[-1] = sp[-1] >= sp[0]; break;
      case TapeOp::Shl:
        --sp;
        sp[-1] = sp[0] >= 64 ? 0 : (sp[-1] << sp[0]) & ip->imm;
        break;
      case TapeOp::Shr:
        --sp;
        sp[-1] = sp[0] >= 64 ? 0 : sp[-1] >> sp[0];
        break;
      case TapeOp::Concat:
        --sp;
        sp[-1] = (sp[-1] << ip->aux) | sp[0];
        break;
      case TapeOp::Mux:
        sp -= 2;
        sp[-1] = sp[-1] ? sp[0] : sp[1];
        break;
    }
  }
  return sp[-1];
}

/// A Netlist compiled once into flat tapes plus the dependency
/// structures for event-driven settling.  Combs are stored in
/// topological evaluation order; "comb index" below always means a
/// position in that order.
class TapeProgram {
public:
  static TapeProgram compile(const Netlist& nl);

  const std::vector<TapeInsn>& code() const { return code_; }
  const std::vector<TapeComb>& combs() const { return combs_; }
  std::uint32_t levels() const { return levels_; }
  std::uint32_t max_stack() const { return max_stack_; }
  std::uint32_t max_slots() const { return max_slots_; }

  /// Comb indices reading net n (each comb listed once).
  const std::uint32_t* fanout_begin(NetId n) const {
    return fanout_.data() + fanout_off_[n];
  }
  const std::uint32_t* fanout_end(NetId n) const {
    return fanout_.data() + fanout_off_[n + 1];
  }

  /// Nets read by comb `ci` (sorted, deduplicated) -- the inverse of the
  /// fanout lists, used by the batch engine's scalar-fallback gather.
  const NetId* sources_begin(std::uint32_t ci) const {
    return sources_.data() + sources_off_[ci];
  }
  const NetId* sources_end(std::uint32_t ci) const {
    return sources_.data() + sources_off_[ci + 1];
  }

  std::uint64_t run(const TapeComb& c, const std::uint64_t* nets,
                    std::uint64_t* stack, std::uint64_t* slots) const {
    return tape_exec(code_.data() + c.begin, code_.data() + c.end, nets, stack,
                     slots);
  }

private:
  std::vector<TapeInsn> code_;
  std::vector<TapeComb> combs_;
  std::vector<std::uint32_t> fanout_off_;  ///< size nets()+1
  std::vector<std::uint32_t> fanout_;
  std::vector<std::uint32_t> sources_off_;  ///< size combs()+1
  std::vector<NetId> sources_;
  std::uint32_t levels_ = 0;
  std::uint32_t max_stack_ = 0;
  std::uint32_t max_slots_ = 0;
};

}  // namespace hlcs::synth
