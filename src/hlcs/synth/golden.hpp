// GoldenCycleModel -- the pre-synthesis executable model at cycle
// accuracy.  It combines the ObjectDesc reference interpreter with a
// software mirror of the synthesised arbiter (identical grant semantics,
// including tie-breaks, counters and the LFSR), so comparing it against
// NetlistSim on the same stimulus is exactly the paper's Sec. 3 step-3
// consistency check: "the resulting model was again simulated to check
// behavior consistency with the original model".
//
// Method bodies live in golden.cpp: the model grows with every arbiter
// policy, and keeping it out-of-line shields the many TUs that include
// this header (benchmarks included) from recompiling and re-laying-out
// their code whenever a policy mirror changes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "hlcs/synth/comm_synth.hpp"
#include "hlcs/synth/interp.hpp"

namespace hlcs::synth {

class GoldenCycleModel {
public:
  struct ClientIn {
    bool req = false;
    std::uint64_t sel = 0;
    std::uint64_t args = 0;  ///< packed, as on the RTL port
  };

  struct StepResult {
    /// Client granted this cycle, if any.
    std::optional<std::size_t> granted;
    std::uint64_t sel = 0;
    std::uint64_t ret = 0;  ///< return value seen by the granted client
  };

  GoldenCycleModel(const ObjectDesc& desc, const SynthOptions& opt);

  void reset();

  /// One clock edge with the given per-client inputs.  `rst` models the
  /// synchronous reset input.
  StepResult step(const std::vector<ClientIn>& in, bool rst = false);

  const ObjectInterp& interp() const { return interp_; }
  std::uint64_t var(std::size_t index) const { return interp_.var(index); }

private:
  std::optional<std::size_t> arbitrate(const std::vector<bool>& elig);
  std::size_t lfsr_offset() const;
  void update_arb_state(const std::vector<ClientIn>& in,
                        const std::vector<bool>& elig,
                        std::optional<std::size_t> granted);

  const ObjectDesc& desc_;
  SynthOptions opt_;
  ObjectInterp interp_;
  std::vector<int> prio_;
  std::size_t rr_last_ = 0;
  std::vector<std::uint64_t> ages_;
  std::vector<std::uint64_t> streaks_;
  std::uint64_t wcnt_ = 0;
  std::uint64_t hcnt_ = 0;
  bool mode_hot_ = false;
  std::uint16_t lfsr_ = 1;
};

}  // namespace hlcs::synth
