// GoldenCycleModel -- the pre-synthesis executable model at cycle
// accuracy.  It combines the ObjectDesc reference interpreter with a
// software mirror of the synthesised arbiter (identical grant semantics,
// including tie-breaks, counters and the LFSR), so comparing it against
// NetlistSim on the same stimulus is exactly the paper's Sec. 3 step-3
// consistency check: "the resulting model was again simulated to check
// behavior consistency with the original model".
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "hlcs/synth/comm_synth.hpp"
#include "hlcs/synth/interp.hpp"

namespace hlcs::synth {

class GoldenCycleModel {
public:
  struct ClientIn {
    bool req = false;
    std::uint64_t sel = 0;
    std::uint64_t args = 0;  ///< packed, as on the RTL port
  };

  struct StepResult {
    /// Client granted this cycle, if any.
    std::optional<std::size_t> granted;
    std::uint64_t sel = 0;
    std::uint64_t ret = 0;  ///< return value seen by the granted client
  };

  GoldenCycleModel(const ObjectDesc& desc, const SynthOptions& opt)
      : desc_(desc), opt_(opt), interp_(desc) {
    if (opt_.priorities.empty()) {
      for (std::size_t i = 0; i < opt_.clients; ++i) {
        prio_.push_back(static_cast<int>(opt_.clients - i));
      }
    } else {
      HLCS_ASSERT(opt_.priorities.size() == opt_.clients,
                  "priorities size must equal client count");
      prio_ = opt_.priorities;
    }
    reset();
  }

  void reset() {
    interp_.reset();
    rr_last_ = opt_.clients - 1;
    ages_.assign(opt_.clients, 0);
    lfsr_ = opt_.lfsr_seed;
  }

  /// One clock edge with the given per-client inputs.  `rst` models the
  /// synchronous reset input.
  StepResult step(const std::vector<ClientIn>& in, bool rst = false) {
    HLCS_ASSERT(in.size() == opt_.clients, "step: client count mismatch");
    StepResult result;
    if (rst) {
      reset();
      return result;
    }
    const std::size_t n_methods = desc_.methods().size();
    std::vector<bool> elig(opt_.clients, false);
    for (std::size_t i = 0; i < opt_.clients; ++i) {
      if (!in[i].req || in[i].sel >= n_methods) continue;
      const MethodDesc& m = desc_.methods()[in[i].sel];
      elig[i] = interp_.guard_ok(in[i].sel, unpack_args(m, in[i].args));
    }
    std::optional<std::size_t> pick = arbitrate(elig);
    if (pick) {
      const std::size_t i = *pick;
      const MethodDesc& m = desc_.methods()[in[i].sel];
      result.ret = interp_.invoke(in[i].sel, unpack_args(m, in[i].args));
      result.granted = i;
      result.sel = in[i].sel;
    }
    update_arb_state(in, pick);
    return result;
  }

  const ObjectInterp& interp() const { return interp_; }
  std::uint64_t var(std::size_t index) const { return interp_.var(index); }

private:
  std::optional<std::size_t> arbitrate(const std::vector<bool>& elig) {
    switch (opt_.policy) {
      case osss::PolicyKind::StaticPriority: {
        std::optional<std::size_t> best;
        for (std::size_t i = 0; i < opt_.clients; ++i) {
          if (!elig[i]) continue;
          if (!best || prio_[i] > prio_[*best]) best = i;
        }
        return best;
      }
      case osss::PolicyKind::RoundRobin: {
        // First eligible index > rr_last_, else first eligible overall.
        for (std::size_t i = rr_last_ + 1; i < opt_.clients; ++i) {
          if (elig[i]) return i;
        }
        for (std::size_t i = 0; i < opt_.clients; ++i) {
          if (elig[i]) return i;
        }
        return std::nullopt;
      }
      case osss::PolicyKind::Fifo: {
        // Oldest age wins; ties to the lower index.
        std::optional<std::size_t> best;
        for (std::size_t i = 0; i < opt_.clients; ++i) {
          if (!elig[i]) continue;
          if (!best || ages_[i] > ages_[*best]) best = i;
        }
        return best;
      }
      case osss::PolicyKind::Random: {
        const std::size_t offset = lfsr_offset();
        for (std::size_t r = 0; r < opt_.clients; ++r) {
          const std::size_t i = (offset + r) % opt_.clients;
          if (elig[i]) return i;
        }
        return std::nullopt;
      }
    }
    return std::nullopt;
  }

  std::size_t lfsr_offset() const {
    unsigned idx_w = 1;
    while ((1ull << idx_w) < opt_.clients) ++idx_w;
    std::uint64_t raw = lfsr_ & ((1ull << idx_w) - 1);
    if (raw >= opt_.clients) raw -= opt_.clients;
    return static_cast<std::size_t>(raw);
  }

  void update_arb_state(const std::vector<ClientIn>& in,
                        std::optional<std::size_t> granted) {
    if (opt_.policy == osss::PolicyKind::RoundRobin && granted) {
      rr_last_ = *granted;
    }
    if (opt_.policy == osss::PolicyKind::Fifo) {
      const std::uint64_t max_age = ExprArena::mask(opt_.fifo_age_width);
      for (std::size_t i = 0; i < opt_.clients; ++i) {
        if ((granted && *granted == i) || !in[i].req) {
          ages_[i] = 0;
        } else if (ages_[i] < max_age) {
          ages_[i]++;
        }
      }
    }
    if (opt_.policy == osss::PolicyKind::Random) {
      // Fibonacci LFSR, taps 16,14,13,11 -- identical to the netlist.
      const std::uint16_t l = lfsr_;
      const std::uint16_t fb =
          ((l >> 0) ^ (l >> 2) ^ (l >> 3) ^ (l >> 5)) & 1u;
      lfsr_ = static_cast<std::uint16_t>((l >> 1) | (fb << 15));
    }
  }

  const ObjectDesc& desc_;
  SynthOptions opt_;
  ObjectInterp interp_;
  std::vector<int> prio_;
  std::size_t rr_last_ = 0;
  std::vector<std::uint64_t> ages_;
  std::uint16_t lfsr_ = 1;
};

}  // namespace hlcs::synth
