// Minimal x86-64 instruction emitter + executable-page holder for the
// tape JIT (hlcs/synth/jit.hpp).
//
// The emitter is a copy-and-patch style assembler: each tape opcode
// expands to a short fixed instruction stencil whose register numbers,
// displacements and immediates are patched in as bytes are appended.
// Assembly happens into an ordinary heap vector; CodeBuffer then copies
// the finished bytes into fresh anonymous pages and flips them RW -> RX
// exactly once (W^X: the pages are never writable and executable at the
// same time).  Emitted code is position-independent by construction --
// no calls, no absolute data addresses, all memory access is
// [arg-register + disp] -- so installation needs no relocation pass.
//
// Only the encodings the JIT actually uses are provided; everything is
// 64-bit operand size unless noted.  The emitter itself is portable C++
// (it just writes bytes); only CodeBuffer::install touches mmap/mprotect
// and reports failure on hosts without executable pages.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hlcs::synth::jitx64 {

/// Hardware register numbers (x86-64 encoding order).
enum Reg : std::uint8_t {
  RAX = 0, RCX = 1, RDX = 2, RBX = 3, RSP = 4, RBP = 5, RSI = 6, RDI = 7,
  R8 = 8, R9 = 9, R10 = 10, R11 = 11, R12 = 12, R13 = 13, R14 = 14, R15 = 15,
};

/// Condition codes for setcc/cmovcc (unsigned compares only: tape values
/// are masked unsigned words).
enum class Cond : std::uint8_t {
  B = 0x2,   ///< below (unsigned <)
  AE = 0x3,  ///< above or equal (unsigned >=)
  E = 0x4,   ///< equal
  NE = 0x5,  ///< not equal
  BE = 0x6,  ///< below or equal (unsigned <=)
  A = 0x7,   ///< above (unsigned >)
};

/// Two-operand ALU ops sharing the standard opcode pattern.
enum class Alu : std::uint8_t { Add, Or, And, Sub, Xor, Cmp };

class X64Emitter {
public:
  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::size_t size() const { return buf_.size(); }

  // --- moves --------------------------------------------------------
  void mov_ri(Reg r, std::uint64_t imm);            ///< r = imm (best form)
  void mov_rr(Reg dst, Reg src);                    ///< dst = src
  void mov_rm(Reg r, Reg base, std::int32_t disp);  ///< r = [base+disp]
  void mov_mr(Reg base, std::int32_t disp, Reg r);  ///< [base+disp] = r
  /// qword [base+disp] = sign-extended imm32.
  void mov_mi32(Reg base, std::int32_t disp, std::int32_t imm);

  // --- ALU ----------------------------------------------------------
  void alu_rr(Alu op, Reg dst, Reg src);  ///< dst = dst OP src
  /// dst = dst OP [base+disp].
  void alu_rm(Alu op, Reg dst, Reg base, std::int32_t disp);
  /// r = r OP sign-extended imm32.
  void alu_ri32(Alu op, Reg r, std::int32_t imm);
  void not_r(Reg r);
  void neg_r(Reg r);
  void shl_ri(Reg r, unsigned imm);  ///< imm in [0,63]
  void shr_ri(Reg r, unsigned imm);
  void test_rr(Reg a, Reg b);

  // --- conditionals -------------------------------------------------
  /// r = condition ? 1 : 0 (setcc on the low byte + zero-extend).
  void setcc_zx(Cond c, Reg r);
  void cmov_rr(Cond c, Reg dst, Reg src);
  void cmov_rm(Cond c, Reg dst, Reg base, std::int32_t disp);

  // --- stack / control ----------------------------------------------
  void push_r(Reg r);
  void pop_r(Reg r);
  void sub_rsp(std::int32_t n);
  void add_rsp(std::int32_t n);
  void ret();

private:
  void u8(std::uint8_t b) { buf_.push_back(b); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// REX prefix; emitted whenever W, R or B is set.
  void rex(bool w, unsigned reg, unsigned rm);
  /// ModRM (+ SIB for RSP base, + disp) for a [base+disp] operand.
  void modrm_mem(unsigned reg, Reg base, std::int32_t disp);

  std::vector<std::uint8_t> buf_;
};

/// Executable pages holding installed code.  Movable, not copyable; the
/// mapping is released on destruction (the W^X "round trip" exercised by
/// the test suite: map RW, fill, flip RX, run, unmap).
class CodeBuffer {
public:
  CodeBuffer() = default;
  ~CodeBuffer();
  CodeBuffer(CodeBuffer&& o) noexcept;
  CodeBuffer& operator=(CodeBuffer&& o) noexcept;
  CodeBuffer(const CodeBuffer&) = delete;
  CodeBuffer& operator=(const CodeBuffer&) = delete;

  /// Copy `code` into fresh RW pages and flip them to RX.  Returns false
  /// (leaving the buffer empty) when the host cannot provide executable
  /// pages -- non-x86-64 builds, HLCS_JIT=OFF, or a failed map.
  bool install(const std::vector<std::uint8_t>& code);

  bool installed() const { return base_ != nullptr; }
  std::size_t code_size() const { return code_size_; }

  /// Entry point at byte offset `off`, as a callable.
  template <typename Fn>
  Fn entry(std::size_t off) const {
    return reinterpret_cast<Fn>(
        reinterpret_cast<void*>(const_cast<std::uint8_t*>(base_ + off)));
  }

private:
  void release();

  std::uint8_t* base_ = nullptr;
  std::size_t map_size_ = 0;
  std::size_t code_size_ = 0;
};

/// True when this build can emit and execute native code: x86-64, a
/// POSIX mmap, and the HLCS_JIT CMake option left ON.
bool host_supported();

}  // namespace hlcs::synth::jitx64
