#include "hlcs/synth/expr.hpp"

#include <algorithm>
#include <functional>

namespace hlcs::synth {

bool is_unary(ExprOp op) {
  switch (op) {
    case ExprOp::Not: case ExprOp::Neg: case ExprOp::RedOr:
    case ExprOp::RedAnd: case ExprOp::ZExt: case ExprOp::Slice:
      return true;
    default:
      return false;
  }
}

bool is_binary(ExprOp op) {
  switch (op) {
    case ExprOp::Add: case ExprOp::Sub: case ExprOp::Mul:
    case ExprOp::And: case ExprOp::Or: case ExprOp::Xor:
    case ExprOp::Eq: case ExprOp::Ne: case ExprOp::Lt: case ExprOp::Le:
    case ExprOp::Gt: case ExprOp::Ge:
    case ExprOp::Shl: case ExprOp::Shr: case ExprOp::Concat:
      return true;
    default:
      return false;
  }
}

const char* op_name(ExprOp op) {
  switch (op) {
    case ExprOp::Const: return "const";
    case ExprOp::Var: return "var";
    case ExprOp::Arg: return "arg";
    case ExprOp::Not: return "not";
    case ExprOp::Neg: return "neg";
    case ExprOp::RedOr: return "red_or";
    case ExprOp::RedAnd: return "red_and";
    case ExprOp::ZExt: return "zext";
    case ExprOp::Slice: return "slice";
    case ExprOp::Add: return "add";
    case ExprOp::Sub: return "sub";
    case ExprOp::Mul: return "mul";
    case ExprOp::And: return "and";
    case ExprOp::Or: return "or";
    case ExprOp::Xor: return "xor";
    case ExprOp::Eq: return "eq";
    case ExprOp::Ne: return "ne";
    case ExprOp::Lt: return "lt";
    case ExprOp::Le: return "le";
    case ExprOp::Gt: return "gt";
    case ExprOp::Ge: return "ge";
    case ExprOp::Shl: return "shl";
    case ExprOp::Shr: return "shr";
    case ExprOp::Concat: return "concat";
    case ExprOp::Mux: return "mux";
  }
  return "?";
}

std::uint64_t eval(const ExprArena& arena, ExprId root,
                   const std::vector<std::uint64_t>& vars,
                   const std::vector<std::uint64_t>& args) {
  std::function<std::uint64_t(ExprId)> go = [&](ExprId id) -> std::uint64_t {
    const ExprNode& n = arena.at(id);
    const std::uint64_t m = ExprArena::mask(n.width);
    switch (n.op) {
      case ExprOp::Const:
        return n.imm & m;
      case ExprOp::Var:
        HLCS_ASSERT(n.imm < vars.size(), "eval: var index out of range");
        return vars[n.imm] & m;
      case ExprOp::Arg:
        HLCS_ASSERT(n.imm < args.size(), "eval: arg index out of range");
        return args[n.imm] & m;
      case ExprOp::Not:
        return ~go(n.a) & m;
      case ExprOp::Neg:
        return (~go(n.a) + 1) & m;
      case ExprOp::RedOr:
        return go(n.a) != 0;
      case ExprOp::RedAnd:
        return go(n.a) == ExprArena::mask(arena.at(n.a).width);
      case ExprOp::ZExt:
        return go(n.a) & m;
      case ExprOp::Slice:
        return (go(n.a) >> n.imm) & m;
      case ExprOp::Add:
        return (go(n.a) + go(n.b)) & m;
      case ExprOp::Sub:
        return (go(n.a) - go(n.b)) & m;
      case ExprOp::Mul:
        return (go(n.a) * go(n.b)) & m;
      case ExprOp::And:
        return go(n.a) & go(n.b);
      case ExprOp::Or:
        return go(n.a) | go(n.b);
      case ExprOp::Xor:
        return go(n.a) ^ go(n.b);
      case ExprOp::Eq:
        return go(n.a) == go(n.b);
      case ExprOp::Ne:
        return go(n.a) != go(n.b);
      case ExprOp::Lt:
        return go(n.a) < go(n.b);
      case ExprOp::Le:
        return go(n.a) <= go(n.b);
      case ExprOp::Gt:
        return go(n.a) > go(n.b);
      case ExprOp::Ge:
        return go(n.a) >= go(n.b);
      case ExprOp::Shl: {
        const std::uint64_t s = go(n.b);
        return s >= 64 ? 0 : (go(n.a) << s) & m;
      }
      case ExprOp::Shr: {
        const std::uint64_t s = go(n.b);
        return s >= 64 ? 0 : (go(n.a) >> s) & m;
      }
      case ExprOp::Concat:
        return ((go(n.a) << arena.at(n.b).width) | go(n.b)) & m;
      case ExprOp::Mux:
        return go(n.a) ? go(n.b) : go(n.c);
    }
    fail("eval: unknown op");
  };
  return go(root);
}

unsigned depth(const ExprArena& arena, ExprId root) {
  std::function<unsigned(ExprId)> go = [&](ExprId id) -> unsigned {
    const ExprNode& n = arena.at(id);
    switch (n.op) {
      case ExprOp::Const: case ExprOp::Var: case ExprOp::Arg:
        return 0;
      default: {
        unsigned d = 0;
        if (n.a != kNoExpr) d = std::max(d, go(n.a));
        if (n.b != kNoExpr) d = std::max(d, go(n.b));
        if (n.c != kNoExpr) d = std::max(d, go(n.c));
        // Slicing and zero-extension are wiring, not logic.
        const bool free_op = n.op == ExprOp::Slice || n.op == ExprOp::ZExt ||
                             n.op == ExprOp::Concat;
        return d + (free_op ? 0 : 1);
      }
    }
  };
  return go(root);
}

ExprId clone_expr(const ExprArena& src, ExprId id, ExprArena& dst,
                  const std::function<ExprId(std::uint32_t, unsigned)>& map_var,
                  const std::function<ExprId(std::uint32_t, unsigned)>& map_arg) {
  const ExprNode& n = src.at(id);
  switch (n.op) {
    case ExprOp::Const:
      return dst.cst(n.imm, n.width);
    case ExprOp::Var:
      return map_var(static_cast<std::uint32_t>(n.imm), n.width);
    case ExprOp::Arg:
      return map_arg(static_cast<std::uint32_t>(n.imm), n.width);
    case ExprOp::ZExt:
      return dst.zext(clone_expr(src, n.a, dst, map_var, map_arg), n.width);
    case ExprOp::Slice:
      return dst.slice(clone_expr(src, n.a, dst, map_var, map_arg),
                       static_cast<unsigned>(n.imm), n.width);
    case ExprOp::Mux:
      return dst.mux(clone_expr(src, n.a, dst, map_var, map_arg),
                     clone_expr(src, n.b, dst, map_var, map_arg),
                     clone_expr(src, n.c, dst, map_var, map_arg));
    default:
      if (is_unary(n.op)) {
        return dst.un(n.op, clone_expr(src, n.a, dst, map_var, map_arg));
      }
      return dst.bin(n.op, clone_expr(src, n.a, dst, map_var, map_arg),
                     clone_expr(src, n.b, dst, map_var, map_arg));
  }
  fail("clone_expr: unknown op");
}

std::string to_string(const ExprArena& arena, ExprId root) {
  std::function<std::string(ExprId)> go = [&](ExprId id) -> std::string {
    const ExprNode& n = arena.at(id);
    switch (n.op) {
      case ExprOp::Const:
        return std::to_string(n.imm) + "'" + std::to_string(n.width);
      case ExprOp::Var:
        return "v" + std::to_string(n.imm);
      case ExprOp::Arg:
        return "a" + std::to_string(n.imm);
      case ExprOp::Slice:
        return go(n.a) + "[" + std::to_string(n.imm + n.width - 1) + ":" +
               std::to_string(n.imm) + "]";
      case ExprOp::Mux:
        return "(" + go(n.a) + " ? " + go(n.b) + " : " + go(n.c) + ")";
      default:
        if (is_unary(n.op)) {
          return std::string(op_name(n.op)) + "(" + go(n.a) + ")";
        }
        return "(" + go(n.a) + " " + op_name(n.op) + " " + go(n.b) + ")";
    }
  };
  return go(root);
}

}  // namespace hlcs::synth
