// Cycle-accurate netlist simulator.
//
// NetlistSim is a standalone two-phase evaluator (settle combinational
// logic, latch registers on clock_edge()) used by the consistency
// experiments and tests.  Since PR 2 the combinational logic runs on a
// compile-once bytecode tape (hlcs/synth/tape.hpp) and settling is
// event-driven: only the cone reachable from nets that actually changed
// is re-evaluated, drained in topological-level order.  The legacy
// recursive tree-walk and a full-tape mode are kept selectable for A/B
// measurement and the bit-identity test suite (docs/PERF.md).
//
// RtlModule wraps a NetlistSim into a kernel Module driven by a Clock
// with Signal<uint64_t> pins, so synthesised blocks co-simulate with
// behavioural models.  Pins are resolved string->NetId once at
// construction and iterated as flat name-sorted arrays on each edge, so
// sampling/publishing order is deterministic across platforms.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "hlcs/sim/clock.hpp"
#include "hlcs/sim/module.hpp"
#include "hlcs/sim/signal.hpp"
#include "hlcs/synth/jit.hpp"
#include "hlcs/synth/netlist.hpp"
#include "hlcs/synth/tape.hpp"

namespace hlcs::synth {

/// How settle() evaluates the combinational logic.
enum class SettleMode : std::uint8_t {
  Incremental,  ///< event-driven: dirty cone only, in level order (default)
  FullTape,     ///< every comb, every settle, on the bytecode tape
  TreeWalk,     ///< every comb via the recursive interpreter (A/B reference)
  Jit,          ///< every comb, as native code (falls back to FullTape
                ///< evaluation on hosts without JIT support)
};

inline const char* to_string(SettleMode m) {
  switch (m) {
    case SettleMode::Incremental: return "incremental";
    case SettleMode::FullTape: return "full_tape";
    case SettleMode::TreeWalk: return "tree_walk";
    case SettleMode::Jit: return "jit";
  }
  return "?";
}

class NetlistSim {
public:
  explicit NetlistSim(const Netlist& nl,
                      SettleMode mode = SettleMode::Incremental)
      : nl_(nl),
        mode_(mode),
        tape_(TapeProgram::compile(nl)),
        values_(nl.nets().size(), 0),
        stack_(std::max<std::uint32_t>(tape_.max_stack(), 1), 0),
        slots_(std::max<std::uint32_t>(tape_.max_slots(), 1), 0),
        latch_(nl.regs().size(), 0),
        dirty_(tape_.combs().size(), 0),
        buckets_(tape_.levels()) {
    if (mode_ == SettleMode::TreeWalk) order_ = nl.validate_and_order();
    if (mode_ == SettleMode::Jit && TapeJit::host_supported()) {
      jit_ = std::make_unique<TapeJit>(tape_);
      if (!jit_->available()) jit_.reset();  // fall back to the tape loop
    }
    reset_state();
  }

  /// Latch every register's initial value and settle (fully).
  void reset_state() {
    for (const RegDesc& r : nl_.regs()) values_[r.q] = r.init;
    full_settle();
    ++stats_.settles;
    ++stats_.full_settles;
  }

  void set_input(NetId n, std::uint64_t v) {
    v &= ExprArena::mask(nl_.nets()[n].width);
    if (values_[n] == v) return;
    values_[n] = v;
    ++stats_.input_changes;
    if (mode_ == SettleMode::Incremental) mark_net(n);
  }
  void set_input(const std::string& name, std::uint64_t v) {
    set_input(nl_.find(name), v);
  }

  std::uint64_t get(NetId n) const { return values_.at(n); }
  std::uint64_t get(const std::string& name) const {
    return values_.at(nl_.find(name));
  }

  /// Propagate combinational logic.  Incremental mode drains the dirty
  /// worklist level by level; the other modes evaluate every comb.
  void settle() {
    ++stats_.settles;
    if (mode_ != SettleMode::Incremental) {
      full_settle();
      ++stats_.full_settles;
      return;
    }
    stats_.combs_possible += tape_.combs().size();
    if (pending_ == 0) return;
    const std::vector<TapeComb>& combs = tape_.combs();
    for (std::vector<std::uint32_t>& bucket : buckets_) {
      // Evaluating a comb at level L only dirties strictly higher
      // levels, so this bucket cannot grow while we drain it.
      for (std::uint32_t ci : bucket) {
        dirty_[ci] = 0;
        const TapeComb& c = combs[ci];
        const std::uint64_t v =
            tape_.run(c, values_.data(), stack_.data(), slots_.data());
        ++stats_.combs_evaluated;
        stats_.tape_instructions += c.end - c.begin;
        if (values_[c.target] != v) {
          values_[c.target] = v;
          mark_net(c.target);
        }
      }
      bucket.clear();
    }
    pending_ = 0;
  }

  /// One rising clock edge: settle, latch all registers simultaneously,
  /// settle again so outputs reflect the new state.
  void clock_edge() {
    settle();
    const std::vector<RegDesc>& regs = nl_.regs();
    for (std::size_t i = 0; i < regs.size(); ++i) {
      latch_[i] = values_[regs[i].d];
    }
    for (std::size_t i = 0; i < regs.size(); ++i) {
      const NetId q = regs[i].q;
      if (values_[q] == latch_[i]) continue;
      values_[q] = latch_[i];
      ++stats_.reg_changes;
      if (mode_ == SettleMode::Incremental) mark_net(q);
    }
    settle();
    ++stats_.edges;
  }

  const Netlist& netlist() const { return nl_; }
  const TapeProgram& tape() const { return tape_; }
  SettleMode mode() const { return mode_; }
  const NetlistStats& stats() const { return stats_; }
  void reset_stats() { stats_ = NetlistStats{}; }
  /// Non-null when settles run through the native JIT (SettleMode::Jit
  /// on a supported host).
  const JitStats* jit_stats() const { return jit_ ? &jit_->stats() : nullptr; }

private:
  /// Evaluate every comb in topological order, then discard any pending
  /// dirty state (everything is consistent afterwards).
  void full_settle() {
    stats_.combs_possible += tape_.combs().size();
    if (jit_) {
      jit_->run_full(values_.data(), stack_.data(), slots_.data(), &stats_);
    } else if (mode_ == SettleMode::TreeWalk) {
      const auto& combs = nl_.combs();
      for (std::size_t ci : order_) {
        values_[combs[ci].target] =
            eval(nl_.arena(), combs[ci].value, values_, {});
        ++stats_.combs_evaluated;
      }
    } else {
      for (const TapeComb& c : tape_.combs()) {
        values_[c.target] =
            tape_.run(c, values_.data(), stack_.data(), slots_.data());
        ++stats_.combs_evaluated;
        stats_.tape_instructions += c.end - c.begin;
      }
    }
    if (pending_ != 0) {
      for (std::vector<std::uint32_t>& bucket : buckets_) {
        for (std::uint32_t ci : bucket) dirty_[ci] = 0;
        bucket.clear();
      }
      pending_ = 0;
    }
  }

  void mark_net(NetId n) {
    const std::uint32_t* it = tape_.fanout_begin(n);
    const std::uint32_t* end = tape_.fanout_end(n);
    for (; it != end; ++it) {
      if (dirty_[*it]) continue;
      dirty_[*it] = 1;
      buckets_[tape_.combs()[*it].level].push_back(*it);
      ++pending_;
    }
    if (pending_ > stats_.peak_worklist) stats_.peak_worklist = pending_;
  }

  const Netlist& nl_;
  SettleMode mode_;
  TapeProgram tape_;
  std::unique_ptr<TapeJit> jit_;    ///< Jit mode on a supported host
  std::vector<std::size_t> order_;  ///< TreeWalk mode only
  std::vector<std::uint64_t> values_;
  std::vector<std::uint64_t> stack_;  ///< tape evaluation stack
  std::vector<std::uint64_t> slots_;  ///< tape CSE slots
  std::vector<std::uint64_t> latch_;  ///< persistent two-phase reg scratch
  std::vector<std::uint8_t> dirty_;   ///< per comb (topo index)
  std::vector<std::vector<std::uint32_t>> buckets_;  ///< dirty combs per level
  std::size_t pending_ = 0;
  NetlistStats stats_;
};

/// Kernel integration: the synthesised block as a clocked module.  Input
/// nets are sampled from bound signals just before each rising edge
/// (i.e. the values written during the previous cycle), and output nets
/// are published to bound signals after the edge.  Pins live in dense
/// name-sorted arrays: resolution happens once here, and edge traversal
/// order (hence VCD trace and transcript order) is deterministic.
class RtlModule : public sim::Module {
public:
  RtlModule(sim::Kernel& k, std::string name, const Netlist& nl,
            sim::Clock& clk, SettleMode mode = SettleMode::Incremental)
      : Module(k, std::move(name)), sim_(nl, mode) {
    auto build = [&](const std::vector<NetId>& nets, std::vector<Pin>& pins,
                     std::unordered_map<std::string, std::size_t>& index) {
      std::vector<NetId> sorted = nets;
      std::sort(sorted.begin(), sorted.end(), [&](NetId a, NetId b) {
        return nl.nets()[a].name < nl.nets()[b].name;
      });
      pins.reserve(sorted.size());
      for (NetId n : sorted) {
        const std::string& pin_name = nl.nets()[n].name;
        index.emplace(pin_name, pins.size());
        pins.push_back(Pin{pin_name, n,
                           std::make_unique<sim::Signal<std::uint64_t>>(
                               k, sub(pin_name), 0)});
      }
    };
    build(nl.inputs(), in_, in_ix_);
    build(nl.outputs(), out_, out_ix_);
    sim::MethodProcess& m =
        method("edge", [this] { on_edge(); }, /*initial_trigger=*/false);
    clk.posedge().add_static(m);
    publish_outputs();
  }

  sim::Signal<std::uint64_t>& in(const std::string& pin_name) {
    auto it = in_ix_.find(pin_name);
    HLCS_ASSERT(it != in_ix_.end(), "RtlModule: no input pin " + pin_name);
    return *in_[it->second].sig;
  }
  sim::Signal<std::uint64_t>& out(const std::string& pin_name) {
    auto it = out_ix_.find(pin_name);
    HLCS_ASSERT(it != out_ix_.end(), "RtlModule: no output pin " + pin_name);
    return *out_[it->second].sig;
  }

  /// Pin names in traversal (publish) order: sorted, deterministic.
  std::vector<std::string> input_pins() const { return names(in_); }
  std::vector<std::string> output_pins() const { return names(out_); }

  NetlistSim& netlist_sim() { return sim_; }
  std::uint64_t edges() const { return edges_; }

private:
  struct Pin {
    std::string name;
    NetId net;
    std::unique_ptr<sim::Signal<std::uint64_t>> sig;
  };

  static std::vector<std::string> names(const std::vector<Pin>& pins) {
    std::vector<std::string> out;
    out.reserve(pins.size());
    for (const Pin& p : pins) out.push_back(p.name);
    return out;
  }

  void on_edge() {
    for (const Pin& pin : in_) sim_.set_input(pin.net, pin.sig->read());
    sim_.clock_edge();
    publish_outputs();
    ++edges_;
  }

  void publish_outputs() {
    for (const Pin& pin : out_) pin.sig->write(sim_.get(pin.net));
  }

  NetlistSim sim_;
  std::vector<Pin> in_;
  std::vector<Pin> out_;
  std::unordered_map<std::string, std::size_t> in_ix_;
  std::unordered_map<std::string, std::size_t> out_ix_;
  std::uint64_t edges_ = 0;
};

}  // namespace hlcs::synth
