// Cycle-accurate netlist simulator.
//
// NetlistSim is a standalone two-phase evaluator (settle combinational
// logic in topological order, latch registers on clock_edge()) used by
// the consistency experiments and tests.  RtlModule wraps a NetlistSim
// into a kernel Module driven by a Clock with Signal<uint64_t> pins, so
// synthesised blocks co-simulate with behavioural models.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "hlcs/sim/clock.hpp"
#include "hlcs/sim/module.hpp"
#include "hlcs/sim/signal.hpp"
#include "hlcs/synth/netlist.hpp"

namespace hlcs::synth {

class NetlistSim {
public:
  explicit NetlistSim(const Netlist& nl)
      : nl_(nl), order_(nl.validate_and_order()), values_(nl.nets().size(), 0) {
    reset_state();
  }

  /// Latch every register's initial value and settle.
  void reset_state() {
    for (const RegDesc& r : nl_.regs()) values_[r.q] = r.init;
    settle();
  }

  void set_input(NetId n, std::uint64_t v) {
    values_[n] = v & ExprArena::mask(nl_.nets()[n].width);
  }
  void set_input(const std::string& name, std::uint64_t v) {
    set_input(nl_.find(name), v);
  }

  std::uint64_t get(NetId n) const { return values_.at(n); }
  std::uint64_t get(const std::string& name) const {
    return values_.at(nl_.find(name));
  }

  /// Propagate combinational logic (topological order -> one pass).
  void settle() {
    const auto& combs = nl_.combs();
    for (std::size_t ci : order_) {
      values_[combs[ci].target] = eval(nl_.arena(), combs[ci].value, values_, {});
    }
  }

  /// One rising clock edge: settle, latch all registers simultaneously,
  /// settle again so outputs reflect the new state.
  void clock_edge() {
    settle();
    std::vector<std::uint64_t> next;
    next.reserve(nl_.regs().size());
    for (const RegDesc& r : nl_.regs()) next.push_back(values_[r.d]);
    std::size_t i = 0;
    for (const RegDesc& r : nl_.regs()) values_[r.q] = next[i++];
    settle();
  }

  const Netlist& netlist() const { return nl_; }

private:
  const Netlist& nl_;
  std::vector<std::size_t> order_;
  std::vector<std::uint64_t> values_;
};

/// Kernel integration: the synthesised block as a clocked module.  Input
/// nets are sampled from bound signals just before each rising edge
/// (i.e. the values written during the previous cycle), and output nets
/// are published to bound signals after the edge.
class RtlModule : public sim::Module {
public:
  RtlModule(sim::Kernel& k, std::string name, const Netlist& nl,
            sim::Clock& clk)
      : Module(k, std::move(name)), sim_(nl) {
    for (NetId n : nl.inputs()) {
      in_.emplace(nl.nets()[n].name,
                  Pin{n, std::make_unique<sim::Signal<std::uint64_t>>(
                             k, sub(nl.nets()[n].name), 0)});
    }
    for (NetId n : nl.outputs()) {
      out_.emplace(nl.nets()[n].name,
                   Pin{n, std::make_unique<sim::Signal<std::uint64_t>>(
                              k, sub(nl.nets()[n].name), 0)});
    }
    sim::MethodProcess& m =
        method("edge", [this] { on_edge(); }, /*initial_trigger=*/false);
    clk.posedge().add_static(m);
    publish_outputs();
  }

  sim::Signal<std::uint64_t>& in(const std::string& pin_name) {
    auto it = in_.find(pin_name);
    HLCS_ASSERT(it != in_.end(), "RtlModule: no input pin " + pin_name);
    return *it->second.sig;
  }
  sim::Signal<std::uint64_t>& out(const std::string& pin_name) {
    auto it = out_.find(pin_name);
    HLCS_ASSERT(it != out_.end(), "RtlModule: no output pin " + pin_name);
    return *it->second.sig;
  }

  NetlistSim& netlist_sim() { return sim_; }
  std::uint64_t edges() const { return edges_; }

private:
  struct Pin {
    NetId net;
    std::unique_ptr<sim::Signal<std::uint64_t>> sig;
  };

  void on_edge() {
    for (auto& [pin_name, pin] : in_) sim_.set_input(pin.net, pin.sig->read());
    sim_.clock_edge();
    publish_outputs();
    ++edges_;
  }

  void publish_outputs() {
    for (auto& [pin_name, pin] : out_) pin.sig->write(sim_.get(pin.net));
  }

  NetlistSim sim_;
  std::unordered_map<std::string, Pin> in_;
  std::unordered_map<std::string, Pin> out_;
  std::uint64_t edges_ = 0;
};

}  // namespace hlcs::synth
