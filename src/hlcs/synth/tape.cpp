#include "hlcs/synth/tape.hpp"

#include <algorithm>

namespace hlcs::synth {

namespace {

bool is_leaf(ExprOp op) { return op == ExprOp::Const || op == ExprOp::Var; }

TapeOp tape_op_of(ExprOp op) {
  switch (op) {
    case ExprOp::Not: return TapeOp::Not;
    case ExprOp::Neg: return TapeOp::Neg;
    case ExprOp::RedOr: return TapeOp::RedOr;
    case ExprOp::RedAnd: return TapeOp::RedAnd;
    case ExprOp::Slice: return TapeOp::Slice;
    case ExprOp::Add: return TapeOp::Add;
    case ExprOp::Sub: return TapeOp::Sub;
    case ExprOp::Mul: return TapeOp::Mul;
    case ExprOp::And: return TapeOp::And;
    case ExprOp::Or: return TapeOp::Or;
    case ExprOp::Xor: return TapeOp::Xor;
    case ExprOp::Eq: return TapeOp::Eq;
    case ExprOp::Ne: return TapeOp::Ne;
    case ExprOp::Lt: return TapeOp::Lt;
    case ExprOp::Le: return TapeOp::Le;
    case ExprOp::Gt: return TapeOp::Gt;
    case ExprOp::Ge: return TapeOp::Ge;
    case ExprOp::Shl: return TapeOp::Shl;
    case ExprOp::Shr: return TapeOp::Shr;
    case ExprOp::Concat: return TapeOp::Concat;
    case ExprOp::Mux: return TapeOp::Mux;
    default: fail("tape: op has no bytecode form");
  }
}

/// Per-comb compiler state, reused across combs (epoch-stamped arrays
/// instead of per-comb clears).
struct CombCompiler {
  const ExprArena& arena;
  std::vector<TapeInsn>& code;

  std::vector<std::uint32_t> stamp;      // per arena node
  std::vector<std::uint32_t> refs;       // valid when stamp matches
  std::vector<std::uint32_t> slot;       // valid when slot_stamp matches
  std::vector<std::uint32_t> slot_stamp;
  std::uint32_t epoch = 0;

  std::vector<ExprId> reach;         // cone of the current root
  std::vector<NetId> sources;        // nets read by the current root
  std::vector<ExprId> walk;          // DFS scratch
  std::vector<std::uint64_t> visit;  // emit scratch: (id << 1) | post

  int cur_depth = 0;
  int max_depth = 0;
  std::uint32_t n_slots = 0;

  CombCompiler(const ExprArena& a, std::vector<TapeInsn>& c)
      : arena(a), code(c), stamp(a.size(), 0), refs(a.size(), 0),
        slot(a.size(), 0), slot_stamp(a.size(), 0) {}

  void emit(TapeOp op, std::uint32_t aux, std::uint64_t imm, int delta) {
    code.push_back(TapeInsn{op, aux, imm});
    cur_depth += delta;
    if (cur_depth > max_depth) max_depth = cur_depth;
  }

  /// Emit one expression (stopping at slotted subtrees); the value ends
  /// up on top of the evaluation stack.
  void emit_expr(ExprId root) { walk_children(root); }

  /// Reachability + reference counts over the cone of `root`.
  void analyze(ExprId root) {
    ++epoch;
    reach.clear();
    sources.clear();
    walk.clear();
    walk.push_back(root);
    stamp[root] = epoch;
    refs[root] = 0;
    reach.push_back(root);
    while (!walk.empty()) {
      const ExprId id = walk.back();
      walk.pop_back();
      const ExprNode& n = arena.at(id);
      if (n.op == ExprOp::Var) {
        sources.push_back(static_cast<NetId>(n.imm));
        continue;
      }
      for (ExprId ch : {n.a, n.b, n.c}) {
        if (ch == kNoExpr) continue;
        if (stamp[ch] == epoch) {
          ++refs[ch];
        } else {
          stamp[ch] = epoch;
          refs[ch] = 1;
          reach.push_back(ch);
          walk.push_back(ch);
        }
      }
    }
    std::sort(sources.begin(), sources.end());
    sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
  }

  /// Compile one comb expression; returns the slot count it used.
  void compile(ExprId root) {
    analyze(root);
    cur_depth = 0;
    max_depth = 0;
    n_slots = 0;
    // Shared non-leaf subexpressions (arena DAG nodes referenced more
    // than once inside this cone) are computed once into a slot.
    // Ascending ExprId order is a topological order (children precede
    // parents), so a shared node's own shared children are already
    // stored when its code runs.
    std::sort(reach.begin(), reach.end());
    for (ExprId id : reach) {
      if (refs[id] < 2 || is_leaf(arena.at(id).op)) continue;
      walk_children(id);
      slot[id] = n_slots++;
      slot_stamp[id] = epoch;
      emit(TapeOp::StoreSlot, slot[id], 0, -1);
    }
    emit_expr(root);
  }

private:
  void walk_children(ExprId root) {
    visit.clear();
    visit.push_back(std::uint64_t{root} << 1);
    while (!visit.empty()) {
      const std::uint64_t v = visit.back();
      visit.pop_back();
      const ExprId id = static_cast<ExprId>(v >> 1);
      const ExprNode& n = arena.at(id);
      if (v & 1) {  // post-visit: children are on the stack
        emit_node(n);
        continue;
      }
      if (id != root && slot_stamp[id] == epoch &&
          !is_leaf(n.op)) {  // already computed into a slot
        emit(TapeOp::PushSlot, slot[id], 0, +1);
        continue;
      }
      switch (n.op) {
        case ExprOp::Const:
          emit(TapeOp::PushConst, 0, n.imm, +1);
          continue;
        case ExprOp::Var:
          emit(TapeOp::PushNet, static_cast<std::uint32_t>(n.imm), 0, +1);
          continue;
        case ExprOp::Arg:
          fail("tape: netlists must not contain Arg leaves");
        case ExprOp::ZExt:
          // Values are stored masked, so zero-extension is a no-op:
          // compile straight through to the operand.
          visit.push_back(std::uint64_t{n.a} << 1);
          continue;
        default:
          break;
      }
      visit.push_back((std::uint64_t{id} << 1) | 1);
      // Push c,b,a so a is compiled (and lands on the stack) first.
      if (n.c != kNoExpr) visit.push_back(std::uint64_t{n.c} << 1);
      if (n.b != kNoExpr) visit.push_back(std::uint64_t{n.b} << 1);
      visit.push_back(std::uint64_t{n.a} << 1);
    }
  }

  void emit_node(const ExprNode& n) {
    const std::uint64_t m = ExprArena::mask(n.width);
    switch (n.op) {
      case ExprOp::Not:
      case ExprOp::Neg:
        emit(tape_op_of(n.op), 0, m, 0);
        break;
      case ExprOp::RedOr:
        emit(TapeOp::RedOr, 0, 0, 0);
        break;
      case ExprOp::RedAnd:
        emit(TapeOp::RedAnd, 0, ExprArena::mask(arena.at(n.a).width), 0);
        break;
      case ExprOp::Slice:
        emit(TapeOp::Slice, static_cast<std::uint32_t>(n.imm), m, 0);
        break;
      case ExprOp::Add:
      case ExprOp::Sub:
      case ExprOp::Mul:
      case ExprOp::Shl:
        emit(tape_op_of(n.op), 0, m, -1);
        break;
      case ExprOp::Concat:
        emit(TapeOp::Concat, arena.at(n.b).width, 0, -1);
        break;
      case ExprOp::Mux:
        emit(TapeOp::Mux, 0, 0, -2);
        break;
      default:
        emit(tape_op_of(n.op), 0, 0, -1);  // masked-operand binaries
        break;
    }
  }
};

}  // namespace

TapeProgram TapeProgram::compile(const Netlist& nl) {
  TapeProgram p;
  const std::vector<std::size_t> order = nl.validate_and_order();
  const std::vector<CombAssign>& combs = nl.combs();
  const std::size_t n_nets = nl.nets().size();

  CombCompiler cc(nl.arena(), p.code_);
  // Topo position of the comb driving each net (or none).
  std::vector<std::uint32_t> driver(n_nets, ~std::uint32_t{0});
  std::vector<std::vector<std::uint32_t>> fanout(n_nets);

  p.combs_.reserve(combs.size());
  p.sources_off_.reserve(order.size() + 1);
  p.sources_off_.push_back(0);
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const CombAssign& c = combs[order[pos]];
    TapeComb tc;
    tc.target = c.target;
    tc.begin = static_cast<std::uint32_t>(p.code_.size());
    cc.compile(c.value);
    tc.end = static_cast<std::uint32_t>(p.code_.size());
    tc.level = 0;
    p.sources_.insert(p.sources_.end(), cc.sources.begin(), cc.sources.end());
    p.sources_off_.push_back(static_cast<std::uint32_t>(p.sources_.size()));
    for (NetId src : cc.sources) {
      fanout[src].push_back(static_cast<std::uint32_t>(pos));
      if (driver[src] != ~std::uint32_t{0}) {
        tc.level = std::max(tc.level, p.combs_[driver[src]].level + 1);
      }
    }
    driver[c.target] = static_cast<std::uint32_t>(pos);
    p.max_stack_ = std::max(p.max_stack_,
                            static_cast<std::uint32_t>(cc.max_depth));
    p.max_slots_ = std::max(p.max_slots_, cc.n_slots);
    p.levels_ = std::max(p.levels_, tc.level + 1);
    p.combs_.push_back(tc);
  }

  p.fanout_off_.reserve(n_nets + 1);
  p.fanout_off_.push_back(0);
  for (NetId n = 0; n < n_nets; ++n) {
    p.fanout_.insert(p.fanout_.end(), fanout[n].begin(), fanout[n].end());
    p.fanout_off_.push_back(static_cast<std::uint32_t>(p.fanout_.size()));
  }
  return p;
}

}  // namespace hlcs::synth
