// Native code generation for TapeProgram evaluation.
//
// Two compilers share one copy-and-patch backend (jit_emit_x64.hpp):
//
//  * TapeJit lowers the scalar bytecode tape to straight-line x86-64.
//    The virtual value stack is register-allocated -- depths 0..4 live
//    permanently in {rax, rcx, rdx, r8, r9}, deeper values spill to a
//    small rsp frame -- so a whole comb becomes one branch-free run of
//    ALU ops ending in a store to its target net.  Consecutive
//    compilable combs are concatenated into segment functions, which is
//    where the win over the interpreter comes from: no dispatch, no
//    stack traffic, and values that a fused interpreter pair would
//    re-load stay register-cached across the pair.  It drops into
//    NetlistSim as SettleMode::Jit (a full-tape mode, like FullTape but
//    native).
//
//  * BatchJit lowers the same tape over superlane bit-plane rows (the
//    BatchTape layout, K in {1,4,8} words per row): every plane-friendly
//    op unrolls to w x K machine ops, with ripple carry/borrow chains
//    for Add/Sub/Neg and the ordered compares carried in r8..r15.  It
//    drops into BatchNetlistSim behind a constructor flag.
//
// The interpreter remains the always-built A/B reference.  Combs whose
// tape contains Mul or a data-dependent shift (Shl/Shr) -- the same set
// the batch engine classifies as scalar -- deopt per comb back to the
// interpreter, with per-opcode counters; non-x86-64 hosts or HLCS_JIT=OFF
// builds simply report host_supported() == false and the callers fall
// back wholesale.  Verdicts are bit-identical to the interpreter in
// every mode (tests/synth/test_jit.cpp is the matrix).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "hlcs/synth/jit_emit_x64.hpp"
#include "hlcs/synth/tape.hpp"

namespace hlcs::synth {

class BatchTape;
struct BatchStats;

constexpr std::size_t kNumTapeOps = static_cast<std::size_t>(TapeOp::Mux) + 1;

/// Printable tape opcode name, for the deopt counters.
const char* tape_op_name(TapeOp op);

/// Observability counters for a JIT compilation + its runtime behaviour,
/// reported through the same --stats path as the batch fusion counters.
struct JitStats {
  bool enabled = false;           ///< native code was installed
  std::uint64_t compile_ns = 0;   ///< emission + page install time
  std::uint64_t code_bytes = 0;   ///< installed machine code size
  std::uint64_t stencils = 0;     ///< opcode stencils expanded
  std::uint64_t segments = 0;     ///< native entry points emitted
  std::uint64_t combs_native = 0; ///< combs compiled to native code
  std::uint64_t combs_deopt = 0;  ///< combs left on the interpreter
  std::uint64_t native_calls = 0;     ///< runtime: segment invocations
  std::uint64_t deopt_comb_evals = 0; ///< runtime: interpreted comb evals
  /// Deopt reasons: count per tape opcode that forced a comb off the
  /// native path (the first offending op of each deopted comb).
  std::array<std::uint64_t, kNumTapeOps> deopt_ops{};

  /// (opcode name, count) for every opcode that caused a deopt.
  std::vector<std::pair<std::string, std::uint64_t>> deopt_hits() const;

  JitStats& operator+=(const JitStats& o);
};

/// Scalar tape -> native code.  Compiles once against a TapeProgram (the
/// reference must outlive the TapeJit) and then evaluates full settles
/// over the caller's net/stack/slot arrays, interleaving native segments
/// with interpreted deopt combs in topological order.
class TapeJit {
public:
  /// True when this build can emit native code at all (x86-64 POSIX
  /// host, HLCS_JIT CMake option ON).
  static bool host_supported();

  explicit TapeJit(const TapeProgram& tape);

  /// Native code installed; false means callers should use the
  /// interpreter (host unsupported or nothing compilable).
  bool available() const { return code_.installed(); }

  /// Evaluate every comb in topological order (one full settle), updating
  /// `stats` the way the interpreter's full-tape mode does:
  /// combs_evaluated counts every comb, tape_instructions only the
  /// interpreted (deopted) ones.
  void run_full(std::uint64_t* nets, std::uint64_t* stack,
                std::uint64_t* slots, NetlistStats* stats);

  const JitStats& stats() const { return stats_; }

private:
  bool emit_comb(jitx64::X64Emitter& e, const TapeComb& c);

  struct Step {
    bool native;
    std::uint32_t arg;  ///< code offset (native) or comb index (deopt)
  };

  const TapeProgram& tape_;
  std::vector<Step> steps_;
  jitx64::CodeBuffer code_;
  std::uint32_t spill_slots_ = 0;
  JitStats stats_;
};

/// Superlane tape -> native code over a BatchTape's plane layout.  The
/// BatchTape reference must outlive the BatchJit; deopted combs are
/// routed back through the BatchTape interpreter (scalar fallback or
/// plane interpreter), so verdicts stay bit-identical per comb.
class BatchJit {
public:
  static bool host_supported() { return TapeJit::host_supported(); }

  explicit BatchJit(BatchTape& bt);

  bool available() const { return code_.installed(); }

  /// One full settle's worth of comb evaluation over `planes`,
  /// maintaining the same BatchStats accounting as BatchTape::run_all.
  void run_all(std::uint64_t* planes, BatchStats& stats);

  const JitStats& stats() const { return stats_; }

private:
  bool emit_comb(jitx64::X64Emitter& e, std::size_t ci);

  struct Step {
    bool native;
    std::uint32_t arg;
  };

  BatchTape& bt_;
  std::vector<Step> steps_;
  jitx64::CodeBuffer code_;
  std::vector<std::uint64_t> scratch_;  ///< stack + slot plane regions
  std::vector<unsigned> slot_w_;        ///< emit-time slot widths
  std::vector<std::uint8_t> slot_set_;  ///< slot stored in current comb
  // Per-settle stat constants for the combs left on the interpreter.
  std::uint64_t interp_plane_insns_ = 0;
  std::uint64_t interp_fused_ = 0;
  JitStats stats_;
};

}  // namespace hlcs::synth
