#include "hlcs/synth/jit_emit_x64.hpp"

#include <cstring>

// The emitter is portable (it only appends bytes); executable-page
// support is what gates the JIT to x86-64 POSIX hosts, and what the
// HLCS_JIT=OFF build switches off.
#if !defined(HLCS_JIT_OFF) && defined(__x86_64__) && \
    (defined(__unix__) || defined(__linux__) || defined(__APPLE__))
#define HLCS_JITX64_ENABLED 1
#include <sys/mman.h>
#include <unistd.h>
#else
#define HLCS_JITX64_ENABLED 0
#endif

namespace hlcs::synth::jitx64 {

namespace {

/// /r opcode bytes for the r/m64 <- r/m64 OP r64 form; the reversed
/// (r64 <- OP r/m64) form is op + 2, the imm32 form uses 0x81 with the
/// extension digit below.
constexpr std::uint8_t kAluMR[] = {0x01, 0x09, 0x21, 0x29, 0x31, 0x39};
constexpr std::uint8_t kAluRM[] = {0x03, 0x0B, 0x23, 0x2B, 0x33, 0x3B};
constexpr std::uint8_t kAluExt[] = {0, 1, 4, 5, 6, 7};

}  // namespace

void X64Emitter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void X64Emitter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void X64Emitter::rex(bool w, unsigned reg, unsigned rm) {
  const std::uint8_t b = static_cast<std::uint8_t>(
      0x40 | (w ? 8 : 0) | ((reg >> 3) << 2) | (rm >> 3));
  if (b != 0x40) u8(b);  // plain 0x40 would be a no-op prefix
}

void X64Emitter::modrm_mem(unsigned reg, Reg base, std::int32_t disp) {
  const unsigned rm = base & 7;
  // RBP/R13 as base require an explicit displacement byte even when 0;
  // the JIT never uses them as bases, but handle it for safety.
  const bool need_disp = disp != 0 || rm == 5;
  const bool disp8 = need_disp && disp >= -128 && disp <= 127;
  const std::uint8_t mod = !need_disp ? 0 : (disp8 ? 1 : 2);
  u8(static_cast<std::uint8_t>((mod << 6) | ((reg & 7) << 3) | rm));
  if (rm == 4) u8(0x24);  // SIB: base=RSP, no index
  if (!need_disp) return;
  if (disp8) {
    u8(static_cast<std::uint8_t>(disp));
  } else {
    u32(static_cast<std::uint32_t>(disp));
  }
}

void X64Emitter::mov_ri(Reg r, std::uint64_t imm) {
  if (imm == 0) {
    // xor r32, r32 zeroes the full register.
    rex(false, r, r);
    u8(0x31);
    u8(static_cast<std::uint8_t>(0xC0 | ((r & 7) << 3) | (r & 7)));
    return;
  }
  if (imm <= 0xFFFFFFFFu) {
    // mov r32, imm32 zero-extends.
    if (r >= 8) u8(0x41);
    u8(static_cast<std::uint8_t>(0xB8 | (r & 7)));
    u32(static_cast<std::uint32_t>(imm));
    return;
  }
  if (static_cast<std::int64_t>(imm) < 0 &&
      static_cast<std::int64_t>(imm) >= -2147483648LL) {
    // mov r/m64, imm32 sign-extends: covers ~0 and other high masks.
    rex(true, 0, r);
    u8(0xC7);
    u8(static_cast<std::uint8_t>(0xC0 | (r & 7)));
    u32(static_cast<std::uint32_t>(imm));
    return;
  }
  rex(true, 0, r);  // movabs
  u8(static_cast<std::uint8_t>(0xB8 | (r & 7)));
  u64(imm);
}

void X64Emitter::mov_rr(Reg dst, Reg src) {
  if (dst == src) return;
  rex(true, src, dst);
  u8(0x89);
  u8(static_cast<std::uint8_t>(0xC0 | ((src & 7) << 3) | (dst & 7)));
}

void X64Emitter::mov_rm(Reg r, Reg base, std::int32_t disp) {
  rex(true, r, base);
  u8(0x8B);
  modrm_mem(r, base, disp);
}

void X64Emitter::mov_mr(Reg base, std::int32_t disp, Reg r) {
  rex(true, r, base);
  u8(0x89);
  modrm_mem(r, base, disp);
}

void X64Emitter::mov_mi32(Reg base, std::int32_t disp, std::int32_t imm) {
  rex(true, 0, base);
  u8(0xC7);
  modrm_mem(0, base, disp);
  u32(static_cast<std::uint32_t>(imm));
}

void X64Emitter::alu_rr(Alu op, Reg dst, Reg src) {
  rex(true, src, dst);
  u8(kAluMR[static_cast<std::size_t>(op)]);
  u8(static_cast<std::uint8_t>(0xC0 | ((src & 7) << 3) | (dst & 7)));
}

void X64Emitter::alu_rm(Alu op, Reg dst, Reg base, std::int32_t disp) {
  rex(true, dst, base);
  u8(kAluRM[static_cast<std::size_t>(op)]);
  modrm_mem(dst, base, disp);
}

void X64Emitter::alu_ri32(Alu op, Reg r, std::int32_t imm) {
  rex(true, 0, r);
  u8(0x81);
  u8(static_cast<std::uint8_t>(
      0xC0 | (kAluExt[static_cast<std::size_t>(op)] << 3) | (r & 7)));
  u32(static_cast<std::uint32_t>(imm));
}

void X64Emitter::not_r(Reg r) {
  rex(true, 0, r);
  u8(0xF7);
  u8(static_cast<std::uint8_t>(0xC0 | (2 << 3) | (r & 7)));
}

void X64Emitter::neg_r(Reg r) {
  rex(true, 0, r);
  u8(0xF7);
  u8(static_cast<std::uint8_t>(0xC0 | (3 << 3) | (r & 7)));
}

void X64Emitter::shl_ri(Reg r, unsigned imm) {
  if (imm == 0) return;
  rex(true, 0, r);
  u8(0xC1);
  u8(static_cast<std::uint8_t>(0xC0 | (4 << 3) | (r & 7)));
  u8(static_cast<std::uint8_t>(imm));
}

void X64Emitter::shr_ri(Reg r, unsigned imm) {
  if (imm == 0) return;
  rex(true, 0, r);
  u8(0xC1);
  u8(static_cast<std::uint8_t>(0xC0 | (5 << 3) | (r & 7)));
  u8(static_cast<std::uint8_t>(imm));
}

void X64Emitter::test_rr(Reg a, Reg b) {
  rex(true, b, a);
  u8(0x85);
  u8(static_cast<std::uint8_t>(0xC0 | ((b & 7) << 3) | (a & 7)));
}

void X64Emitter::setcc_zx(Cond c, Reg r) {
  // setcc r8: REX is required for r8-r15 and harmless for rax..rdx (the
  // JIT never targets rsp/rbp/rsi/rdi here, so the uniform prefix never
  // changes which byte register is named).
  u8(static_cast<std::uint8_t>(0x40 | (r >> 3)));
  u8(0x0F);
  u8(static_cast<std::uint8_t>(0x90 | static_cast<std::uint8_t>(c)));
  u8(static_cast<std::uint8_t>(0xC0 | (r & 7)));
  // movzx r64, r8
  rex(true, r, r);
  u8(0x0F);
  u8(0xB6);
  u8(static_cast<std::uint8_t>(0xC0 | ((r & 7) << 3) | (r & 7)));
}

void X64Emitter::cmov_rr(Cond c, Reg dst, Reg src) {
  rex(true, dst, src);
  u8(0x0F);
  u8(static_cast<std::uint8_t>(0x40 | static_cast<std::uint8_t>(c)));
  u8(static_cast<std::uint8_t>(0xC0 | ((dst & 7) << 3) | (src & 7)));
}

void X64Emitter::cmov_rm(Cond c, Reg dst, Reg base, std::int32_t disp) {
  rex(true, dst, base);
  u8(0x0F);
  u8(static_cast<std::uint8_t>(0x40 | static_cast<std::uint8_t>(c)));
  modrm_mem(dst, base, disp);
}

void X64Emitter::push_r(Reg r) {
  if (r >= 8) u8(0x41);
  u8(static_cast<std::uint8_t>(0x50 | (r & 7)));
}

void X64Emitter::pop_r(Reg r) {
  if (r >= 8) u8(0x41);
  u8(static_cast<std::uint8_t>(0x58 | (r & 7)));
}

void X64Emitter::sub_rsp(std::int32_t n) {
  if (n == 0) return;
  alu_ri32(Alu::Sub, RSP, n);
}

void X64Emitter::add_rsp(std::int32_t n) {
  if (n == 0) return;
  alu_ri32(Alu::Add, RSP, n);
}

void X64Emitter::ret() { u8(0xC3); }

CodeBuffer::~CodeBuffer() { release(); }

CodeBuffer::CodeBuffer(CodeBuffer&& o) noexcept
    : base_(o.base_), map_size_(o.map_size_), code_size_(o.code_size_) {
  o.base_ = nullptr;
  o.map_size_ = 0;
  o.code_size_ = 0;
}

CodeBuffer& CodeBuffer::operator=(CodeBuffer&& o) noexcept {
  if (this != &o) {
    release();
    base_ = o.base_;
    map_size_ = o.map_size_;
    code_size_ = o.code_size_;
    o.base_ = nullptr;
    o.map_size_ = 0;
    o.code_size_ = 0;
  }
  return *this;
}

void CodeBuffer::release() {
#if HLCS_JITX64_ENABLED
  if (base_ != nullptr) munmap(base_, map_size_);
#endif
  base_ = nullptr;
  map_size_ = 0;
  code_size_ = 0;
}

bool CodeBuffer::install(const std::vector<std::uint8_t>& code) {
#if HLCS_JITX64_ENABLED
  release();
  if (code.empty()) return false;
  const long page = sysconf(_SC_PAGESIZE);
  const std::size_t ps = page > 0 ? static_cast<std::size_t>(page) : 4096;
  map_size_ = (code.size() + ps - 1) / ps * ps;
  void* p = mmap(nullptr, map_size_, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) {
    map_size_ = 0;
    return false;
  }
  std::memcpy(p, code.data(), code.size());
  if (mprotect(p, map_size_, PROT_READ | PROT_EXEC) != 0) {
    munmap(p, map_size_);
    map_size_ = 0;
    return false;
  }
  base_ = static_cast<std::uint8_t*>(p);
  code_size_ = code.size();
  return true;
#else
  (void)code;
  return false;
#endif
}

bool host_supported() { return HLCS_JITX64_ENABLED != 0; }

}  // namespace hlcs::synth::jitx64
