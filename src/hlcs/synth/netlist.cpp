#include "hlcs/synth/netlist.hpp"

#include <functional>

namespace hlcs::synth {

std::vector<std::size_t> Netlist::validate_and_order() const {
  enum class DriverKind { None, Input, Reg, Comb };
  std::vector<DriverKind> driver(nets_.size(), DriverKind::None);
  std::vector<std::size_t> comb_of(nets_.size(), ~std::size_t{0});

  auto claim = [&](NetId n, DriverKind kind, const char* what) {
    if (driver[n] != DriverKind::None) {
      throw SynthesisError(name_ + ": net '" + nets_[n].name +
                           "' has multiple drivers (" + what + ")");
    }
    driver[n] = kind;
  };
  for (NetId n : inputs_) claim(n, DriverKind::Input, "input");
  for (const RegDesc& r : regs_) claim(r.q, DriverKind::Reg, "register");
  for (std::size_t i = 0; i < combs_.size(); ++i) {
    claim(combs_[i].target, DriverKind::Comb, "comb assign");
    comb_of[combs_[i].target] = i;
  }
  for (NetId n = 0; n < nets_.size(); ++n) {
    if (driver[n] == DriverKind::None) {
      throw SynthesisError(name_ + ": net '" + nets_[n].name +
                           "' is undriven");
    }
  }

  // Topological sort of comb assigns by depth-first search over the net
  // dependency graph; a back edge is a combinational cycle.
  std::vector<std::size_t> order;
  order.reserve(combs_.size());
  enum class Mark { White, Grey, Black };
  std::vector<Mark> mark(combs_.size(), Mark::White);

  std::function<void(ExprId, std::size_t)> visit_expr;
  std::function<void(std::size_t)> visit_comb = [&](std::size_t ci) {
    if (mark[ci] == Mark::Black) return;
    if (mark[ci] == Mark::Grey) {
      throw SynthesisError(name_ + ": combinational cycle through net '" +
                           nets_[combs_[ci].target].name + "'");
    }
    mark[ci] = Mark::Grey;
    visit_expr(combs_[ci].value, ci);
    mark[ci] = Mark::Black;
    order.push_back(ci);
  };
  visit_expr = [&](ExprId id, std::size_t ci) {
    const ExprNode& n = arena_.at(id);
    if (n.op == ExprOp::Var) {
      const NetId dep = static_cast<NetId>(n.imm);
      HLCS_ASSERT(dep < nets_.size(), "expression references unknown net");
      HLCS_ASSERT(n.width == nets_[dep].width,
                  "expression/net width mismatch on " + nets_[dep].name);
      if (driver[dep] == DriverKind::Comb) visit_comb(comb_of[dep]);
      return;
    }
    HLCS_ASSERT(n.op != ExprOp::Arg, "netlists must not contain Arg leaves");
    if (n.a != kNoExpr) visit_expr(n.a, ci);
    if (n.b != kNoExpr) visit_expr(n.b, ci);
    if (n.c != kNoExpr) visit_expr(n.c, ci);
  };
  for (std::size_t i = 0; i < combs_.size(); ++i) visit_comb(i);
  return order;
}

}  // namespace hlcs::synth
