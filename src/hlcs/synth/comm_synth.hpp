// The communication synthesiser: ObjectDesc x N clients x arbitration
// policy  ->  RTL netlist.  This is the library's stand-in for the
// ODETTE synthesis tool: it turns guarded-method communication into
// synchronous logic.
//
// Generated interface (all activity on the rising clock edge):
//   input  rst                      synchronous reset (state + arbiter)
//   per client i:
//     input  c{i}_req   [1]         request pending
//     input  c{i}_sel   [S]         method select (S = ceil(log2 M))
//     input  c{i}_args  [A]         arguments, packed LSB-first
//     output c{i}_grant [1]         combinational: THIS cycle executes the call
//     output c{i}_ret   [R]         combinational: return value (entry state)
//   per state variable v:
//     output var_{v}                registered state, for observation
//
// One call is granted per clock cycle -- the paper's "synchronous logic"
// implementation of guarded methods.  Guards evaluate combinationally
// over the registered state and the requesting client's arguments.
//
// Arbitration is synthesised structurally:
//   StaticPriority  fixed priority-encoder chain (priority order given in
//                   options, default: client 0 highest)
//   RoundRobin      last-grant register + rotating priority encoder
//   Fifo            per-client saturating age counters; oldest wins,
//                   lowest index breaks ties
//   Random          16-bit Fibonacci LFSR selects a rotating offset
//   Adaptive        age + eligible-streak counters, hot/cold mode
//                   register re-evaluated every 2^window_log2 grants
//                   (see docs/CONTENTION.md)
#pragma once

#include <cstdint>
#include <vector>

#include "hlcs/osss/arbitration.hpp"
#include "hlcs/synth/netlist.hpp"
#include "hlcs/synth/object_desc.hpp"

namespace hlcs::synth {

struct SynthOptions {
  std::size_t clients = 1;
  osss::PolicyKind policy = osss::PolicyKind::StaticPriority;
  /// Per-client priorities for StaticPriority (higher wins; ties broken
  /// by lower client index).  Empty = client 0 highest.
  std::vector<int> priorities;
  /// Width of the FIFO age counters (saturating).
  unsigned fifo_age_width = 8;
  /// Seed of the Random policy's LFSR (must be non-zero).
  std::uint16_t lfsr_seed = 0xACE1;
  // --- Adaptive policy (mirrors osss::AdaptiveTuning) ------------------
  /// Aged-lane threshold: an eligible client whose age counter reaches
  /// this value is served oldest-first ahead of everything else.  Must
  /// fit in fifo_age_width bits.
  std::uint64_t adaptive_starve_bound = 128;
  /// Mode window is 2^window_log2 arbitration steps (power of two so
  /// the window counter is a plain wrapping register).
  unsigned adaptive_window_log2 = 4;
  /// Contended steps per window at or above which hot mode engages.
  unsigned adaptive_hot_threshold = 8;
};

/// Compile a synthesisable object into an RTL netlist.  Throws
/// SynthesisError if the description is invalid or the options are
/// unsupported.
Netlist synthesize(const ObjectDesc& desc, const SynthOptions& options);

// --- port-name helpers (shared by tests, benches, golden model) --------
std::string req_port(std::size_t client);
std::string sel_port(std::size_t client);
std::string args_port(std::size_t client);
std::string grant_port(std::size_t client);
std::string ret_port(std::size_t client);
std::string var_port(const ObjectDesc& desc, std::size_t var_index);

/// Pack method arguments LSB-first in declaration order.
std::uint64_t pack_args(const MethodDesc& m,
                        const std::vector<std::uint64_t>& args);
/// Inverse of pack_args.
std::vector<std::uint64_t> unpack_args(const MethodDesc& m,
                                       std::uint64_t packed);

}  // namespace hlcs::synth
