// RTL netlist: the synthesiser's output.  Nets carry unsigned values of
// 1..64 bits; combinational nets are driven by expressions over other
// nets (Var leaves index nets here), registers latch their D net on the
// rising clock edge.  An implicit synchronous active-high reset restores
// register initial values.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "hlcs/synth/expr.hpp"

namespace hlcs::synth {

using NetId = std::uint32_t;
inline constexpr NetId kNoNet = ~NetId{0};

struct Net {
  std::string name;
  unsigned width;
};

struct CombAssign {
  NetId target;
  ExprId value;
};

struct RegDesc {
  NetId q;
  NetId d;
  std::uint64_t init;
};

class Netlist {
public:
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  ExprArena& arena() { return arena_; }
  const ExprArena& arena() const { return arena_; }

  NetId add_net(std::string net_name, unsigned width) {
    if (width < 1 || width > 64) {
      throw SynthesisError(name_ + ": net '" + net_name + "' is " +
                           std::to_string(width) +
                           " bits wide; nets are limited to 1..64 bits (the "
                           "simulation engines keep one bit-plane row per "
                           "bit of a 64-bit word)");
    }
    const NetId id = static_cast<NetId>(nets_.size());
    if (!index_.emplace(net_name, id).second) {
      throw SynthesisError(name_ + ": duplicate net name '" + net_name + "'");
    }
    nets_.push_back(Net{std::move(net_name), width});
    return id;
  }
  void mark_input(NetId n) { inputs_.push_back(check(n)); }
  void mark_output(NetId n) { outputs_.push_back(check(n)); }

  /// Reference a net in an expression.
  ExprId net_ref(NetId n) {
    check(n);
    return arena_.var(n, nets_[n].width);
  }

  void add_comb(NetId target, ExprId value) {
    check(target);
    HLCS_ASSERT(arena_.at(value).width == nets_[target].width,
                "comb assign width mismatch on net " + nets_[target].name);
    combs_.push_back(CombAssign{target, value});
  }

  void add_reg(NetId q, NetId d, std::uint64_t init) {
    check(q);
    check(d);
    HLCS_ASSERT(nets_[q].width == nets_[d].width, "register width mismatch");
    regs_.push_back(RegDesc{q, d, init & ExprArena::mask(nets_[q].width)});
  }

  const std::vector<Net>& nets() const { return nets_; }
  const std::vector<NetId>& inputs() const { return inputs_; }
  const std::vector<NetId>& outputs() const { return outputs_; }
  const std::vector<CombAssign>& combs() const { return combs_; }
  const std::vector<RegDesc>& regs() const { return regs_; }

  NetId find(const std::string& net_name) const {
    auto it = index_.find(net_name);
    if (it == index_.end()) fail("Netlist: no net named " + net_name);
    return it->second;
  }

  /// Checks the netlist is well-formed: every net driven exactly once
  /// (inputs are driven externally), no combinational cycles.  Returns
  /// the topological evaluation order of the comb assigns.
  std::vector<std::size_t> validate_and_order() const;

private:
  NetId check(NetId n) const {
    HLCS_ASSERT(n < nets_.size(), "bad NetId");
    return n;
  }

  std::string name_;
  ExprArena arena_;
  std::unordered_map<std::string, NetId> index_;  ///< name -> NetId
  std::vector<Net> nets_;
  std::vector<NetId> inputs_;
  std::vector<NetId> outputs_;
  std::vector<CombAssign> combs_;
  std::vector<RegDesc> regs_;
};

}  // namespace hlcs::synth
