#include "hlcs/synth/poly.hpp"

#include <algorithm>

namespace hlcs::synth {

namespace {

unsigned tag_width(std::size_t n_impls) {
  unsigned w = 1;
  while ((1ull << w) < n_impls) ++w;
  return w;
}

}  // namespace

void check_same_interface(const std::vector<const ObjectDesc*>& impls) {
  if (impls.empty()) {
    throw SynthesisError("polymorphic object needs at least one impl");
  }
  for (const ObjectDesc* d : impls) d->validate();
  const ObjectDesc& ref = *impls[0];
  for (std::size_t i = 1; i < impls.size(); ++i) {
    const ObjectDesc& d = *impls[i];
    if (d.methods().size() != ref.methods().size()) {
      throw SynthesisError("impl '" + d.name() +
                           "': method count differs from '" + ref.name() +
                           "'");
    }
    for (std::size_t m = 0; m < ref.methods().size(); ++m) {
      const MethodDesc& a = ref.methods()[m];
      const MethodDesc& b = d.methods()[m];
      if (a.name != b.name || a.ret_width != b.ret_width ||
          a.args.size() != b.args.size()) {
        throw SynthesisError("impl '" + d.name() + "': method '" + b.name +
                             "' signature differs from interface");
      }
      for (std::size_t g = 0; g < a.args.size(); ++g) {
        if (a.args[g].width != b.args[g].width) {
          throw SynthesisError("impl '" + d.name() + "': method '" + b.name +
                               "' argument widths differ");
        }
      }
    }
  }
}

ObjectDesc make_polymorphic(const std::string& name,
                            const std::vector<const ObjectDesc*>& impls,
                            std::uint64_t initial_type,
                            PolymorphicLayout* layout) {
  check_same_interface(impls);
  if (initial_type >= impls.size()) {
    throw SynthesisError("initial type tag out of range");
  }

  ObjectDesc out(name);
  PolymorphicLayout lay;
  const unsigned tw = tag_width(impls.size());
  lay.type_var = out.add_var("__type", tw, initial_type);
  for (const ObjectDesc* d : impls) {
    lay.var_base.push_back(static_cast<std::uint32_t>(out.vars().size()));
    for (const VarDesc& v : d->vars()) {
      out.add_var(d->name() + "_" + v.name, v.width, v.init);
    }
  }

  auto& A = out.arena();
  auto import_from = [&](std::size_t impl, ExprId src) {
    return clone_expr(
        impls[impl]->arena(), src, A,
        [&](std::uint32_t var, unsigned w) {
          return A.var(lay.var_base[impl] + var, w);
        },
        [&](std::uint32_t arg, unsigned w) { return A.arg(arg, w); });
  };
  auto tag_is = [&](std::size_t impl) {
    return A.bin(ExprOp::Eq, A.var(lay.type_var, tw), A.cst(impl, tw));
  };

  const ObjectDesc& ref = *impls[0];
  for (std::size_t m = 0; m < ref.methods().size(); ++m) {
    auto b = out.add_method(ref.methods()[m].name);
    for (const ArgDesc& a : ref.methods()[m].args) b.arg(a.name, a.width);

    // Guard: dispatch over the tag.  An always-true impl guard
    // contributes a constant 1; an out-of-range tag yields 0.
    bool all_unguarded = true;
    for (const ObjectDesc* d : impls) {
      if (d->methods()[m].guard != kNoExpr) all_unguarded = false;
    }
    if (!all_unguarded) {
      ExprId g = A.cst(0, 1);
      for (std::size_t i = impls.size(); i-- > 0;) {
        const MethodDesc& md = impls[i]->methods()[m];
        ExprId gi = md.guard == kNoExpr ? A.cst(1, 1)
                                        : import_from(i, md.guard);
        g = A.mux(tag_is(i), gi, g);
      }
      b.guard(g);
    }

    // Body: every implementation variable assigned by this method in its
    // implementation gets next = tag==impl ? body_expr : hold.
    for (std::size_t i = 0; i < impls.size(); ++i) {
      const MethodDesc& md = impls[i]->methods()[m];
      for (const AssignDesc& as : md.body) {
        const std::uint32_t fv = lay.var_base[i] + as.var;
        const unsigned w = out.vars()[fv].width;
        ExprId value = import_from(i, as.value);
        b.assign(fv, A.mux(tag_is(i), value, A.var(fv, w)));
      }
    }

    // Return value: dispatch over the tag.
    if (ref.methods()[m].ret_width > 0) {
      const unsigned rw = ref.methods()[m].ret_width;
      ExprId r = A.cst(0, rw);
      for (std::size_t i = impls.size(); i-- > 0;) {
        r = A.mux(tag_is(i), import_from(i, impls[i]->methods()[m].ret), r);
      }
      b.returns(r, rw);
    }
  }

  // The late-binding control: re-assign the dynamic type.
  {
    auto b = out.add_method("set_type");
    b.arg("tag", tw);
    b.assign(lay.type_var, out.a(0, tw));
    lay.set_type_method = b.index();
  }

  out.validate();
  if (layout) *layout = lay;
  return out;
}

}  // namespace hlcs::synth
