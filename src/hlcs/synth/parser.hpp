// Textual front end for the synthesisable subset -- the "input language"
// role the ODETTE compiler played for SystemC+.  A .obj description:
//
//   object mailbox {
//     var full : 1 = 0;
//     var data : 16 = 0;
//     method put(d : 16) guard !full {
//       full = 1;
//       data = d;
//     }
//     method get guard full returns 16 {
//       full = 0;
//       return data;
//     }
//   }
//
// Grammar (informal):
//   object    := 'object' IDENT '{' (var | method)* '}'
//   var       := 'var' IDENT ':' WIDTH ('=' literal)? ';'
//   method    := 'method' IDENT params? guard? ret? '{' stmt* '}'
//   params    := '(' (IDENT ':' WIDTH) (',' IDENT ':' WIDTH)* ')'
//   guard     := 'guard' expr
//   ret       := 'returns' WIDTH
//   stmt      := IDENT '=' expr ';'  |  'return' expr ';'
//   expr      := ternary with C precedence over
//                 || && | ^ & ==,!= <,<=,>,>= <<,>> +,- *  unary ! ~ -
//                 and prefix reductions &e / |e via builtins
//   primary   := literal | IDENT | '(' expr ')'
//              | 'zext' '(' expr ',' WIDTH ')'
//              | 'slice' '(' expr ',' LSB ',' WIDTH ')'
//              | 'concat' '(' expr ',' expr ')'
//              | 'redor' '(' expr ')' | 'redand' '(' expr ')'
//   literal   := decimal | 0x-hex; width inferred from context, or
//                annotated as WIDTH'dNNN / WIDTH'hNN.
//
// Width rules: variables and arguments carry declared widths; plain
// literals adapt to the width demanded by their context (masked);
// comparisons and logical operators produce 1-bit values; operands of
// arithmetic/bitwise operators must agree (literals conform).
#pragma once

#include <string>
#include <vector>

#include "hlcs/synth/object_desc.hpp"

namespace hlcs::synth {

/// Thrown with a line/column-annotated message on any syntax, width or
/// semantic error.
class ParseError : public SynthesisError {
public:
  using SynthesisError::SynthesisError;
};

/// Parse one object description (trailing input is an error).
ObjectDesc parse_object(const std::string& source);

/// Parse a file containing one or more object descriptions (e.g. the
/// implementations of a polymorphic interface).
std::vector<ObjectDesc> parse_objects(const std::string& source);

}  // namespace hlcs::synth
