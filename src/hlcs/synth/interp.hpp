// Reference interpreter for ObjectDesc -- the pre-synthesis executable
// semantics.  The synthesised netlist must agree with this interpreter
// cycle for cycle (given the same arbitration); that agreement is the
// paper's Sec. 3 consistency experiment.
#pragma once

#include <cstdint>
#include <vector>

#include "hlcs/synth/object_desc.hpp"

namespace hlcs::synth {

class ObjectInterp {
public:
  explicit ObjectInterp(const ObjectDesc& desc) : desc_(desc) {
    desc_.validate();
    reset();
  }

  /// Restore every variable to its declared initial value.
  void reset() {
    vars_.clear();
    for (const VarDesc& v : desc_.vars()) vars_.push_back(v.init);
  }

  /// Evaluate a method's guard against the current state (and the call's
  /// arguments, which guards may reference).
  bool guard_ok(std::size_t method,
                const std::vector<std::uint64_t>& args = {}) const {
    const MethodDesc& m = desc_.methods().at(method);
    if (m.guard == kNoExpr) return true;
    return eval(desc_.arena(), m.guard, vars_, args) != 0;
  }

  /// Execute a method: parallel-assignment commit, return value computed
  /// from the entry state.  The caller is responsible for checking the
  /// guard first (as the arbiter does).
  std::uint64_t invoke(std::size_t method,
                       const std::vector<std::uint64_t>& args = {}) {
    const MethodDesc& m = desc_.methods().at(method);
    HLCS_ASSERT(args.size() == m.args.size(),
                "invoke: argument count mismatch");
    const std::uint64_t ret =
        m.ret == kNoExpr ? 0 : eval(desc_.arena(), m.ret, vars_, args);
    // Two-phase: evaluate every RHS against the entry state, then commit.
    std::vector<std::pair<std::uint32_t, std::uint64_t>> next;
    next.reserve(m.body.size());
    for (const AssignDesc& as : m.body) {
      next.emplace_back(as.var, eval(desc_.arena(), as.value, vars_, args));
    }
    for (auto [var, value] : next) vars_[var] = value;
    return ret;
  }

  std::uint64_t var(std::size_t index) const { return vars_.at(index); }
  const std::vector<std::uint64_t>& state() const { return vars_; }
  const ObjectDesc& desc() const { return desc_; }

private:
  const ObjectDesc& desc_;
  std::vector<std::uint64_t> vars_;
};

}  // namespace hlcs::synth
