// 64-lane bit-parallel evaluation of TapeProgram bytecode.
//
// The scalar engine (rtl_sim.hpp) holds every net in one packed uint64
// and evaluates one stimulus vector at a time, leaving 63/64ths of each
// machine word idle for 1-bit nets.  BatchTape transposes that layout:
// every net becomes `width` bit-planes, each plane a uint64 whose bit L
// is that net-bit's value in lane L.  One tape instruction over planes
// then advances 64 independent simulations at once -- classic
// bit-parallel gate simulation, applied to the existing bytecode.
//
// Ops with per-bit semantics (And/Or/Xor/Not/Mux/Eq/Ne/RedOr/RedAnd/
// Slice/Concat and the push/slot plumbing) run on planes directly, and
// Add/Sub/Neg plus the ordered comparisons run as 64-lane ripple
// carry/borrow chains over the planes.  Combs containing Mul or the
// data-dependent shifts (Shl/Shr) -- where the cross-bit structure
// depends on lane values -- fall back to per-lane scalar evaluation of
// the SAME tape segment, so every verdict stays bit-identical to the
// scalar engine no matter how a comb is classified.  Classification is
// per-comb and static; BatchStats reports the fallback fraction.
//
// BatchNetlistSim stacks the sequential layer on top: 64 independent
// register files latched together through clock_edge()/settle(), with
// the same reset semantics as NetlistSim.  BatchRunner shards lane
// populations into 64-lane blocks across the ParallelSweep worker pool
// (results indexed by block, bit-identical at any thread count).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "hlcs/synth/netlist.hpp"
#include "hlcs/synth/tape.hpp"

namespace hlcs::synth {

/// Observability counters for the batch engine, mirroring NetlistStats.
/// One "comb evaluation" here advances all 64 lanes of that comb.
struct BatchStats {
  std::uint64_t settles = 0;             ///< settle() calls
  std::uint64_t edges = 0;               ///< clock_edge() calls
  std::uint64_t combs_evaluated = 0;     ///< comb evaluations (64 lanes each)
  std::uint64_t combs_bit_parallel = 0;  ///< evaluated on bit-planes
  std::uint64_t combs_scalar = 0;        ///< evaluated via per-lane fallback
  std::uint64_t scalar_lane_evals = 0;   ///< 64 x combs_scalar
  std::uint64_t plane_instructions = 0;  ///< bit-parallel tape insns executed

  /// Fraction of comb evaluations that took the scalar fallback.
  double scalar_fraction() const {
    return combs_evaluated == 0
               ? 0.0
               : static_cast<double>(combs_scalar) /
                     static_cast<double>(combs_evaluated);
  }

  friend bool operator==(const BatchStats&, const BatchStats&) = default;
};

/// Lane-transposed evaluator for a compiled TapeProgram.  Owns the
/// per-comb bit-parallel/scalar classification and the evaluation
/// scratch; the caller owns the plane array (see BatchNetlistSim).
class BatchTape {
public:
  static constexpr std::size_t kLanes = 64;

  explicit BatchTape(const Netlist& nl);

  const TapeProgram& program() const { return tape_; }
  /// First plane of net n inside the caller's plane array.
  std::uint32_t plane_off(NetId n) const { return plane_off_[n]; }
  /// Total planes across all nets (the plane-array size).
  std::uint32_t total_planes() const { return plane_off_.back(); }
  bool comb_bit_parallel(std::size_t ci) const { return parallel_[ci] != 0; }
  /// Static classification: combs that will take the scalar fallback.
  std::size_t scalar_combs() const { return scalar_combs_; }

  /// Evaluate comb `ci` (all 64 lanes) over `planes` and write the
  /// target net's planes.  Not thread-safe per instance (uses internal
  /// scratch); give each thread its own BatchTape/BatchNetlistSim.
  void run(std::size_t ci, std::uint64_t* planes, BatchStats& stats);

  /// Evaluate every comb in topological order (one full settle's worth
  /// of work); equivalent to run() over all combs but batches the stats
  /// updates out of the hot loop.
  void run_all(std::uint64_t* planes, BatchStats& stats);

private:
  void run_planes(const TapeComb& c, std::uint64_t* planes);
  void run_lanes(std::size_t ci, std::uint64_t* planes);

  /// A plane-stack entry: `p` points either at a net's planes (borrowed)
  /// or at this entry's own fixed 64-plane region in stack_planes_.
  /// Planes at index >= w read as zero (values are stored masked, so a
  /// missing high plane is always all-zero).
  struct Entry {
    const std::uint64_t* p;
    unsigned w;
  };

  TapeProgram tape_;
  std::vector<std::uint32_t> plane_off_;  ///< size nets()+1
  std::vector<unsigned> width_;           ///< net widths
  std::vector<std::uint8_t> parallel_;    ///< per comb (topo index)
  std::size_t scalar_combs_ = 0;

  // Bit-parallel scratch: one fixed 64-plane region per stack slot /
  // CSE slot, so entries never alias each other.
  std::vector<Entry> entries_;
  std::vector<std::uint64_t> stack_planes_;  ///< max_stack x 64
  std::vector<std::uint64_t> slot_planes_;   ///< max_slots x 64
  std::vector<unsigned> slot_w_;

  // Scalar-fallback scratch: per-lane gather/exec buffers.
  std::vector<std::uint64_t> scalar_nets_;  ///< size nets(), sources filled
  std::vector<std::uint64_t> scalar_stack_;
  std::vector<std::uint64_t> scalar_slots_;
};

/// 64 independent netlist simulations stepped in lock step: one shared
/// combinational tape over bit-planes, 64 register files latched
/// together.  The API mirrors NetlistSim with an extra lane index;
/// settle() evaluates the full tape (the batch engine's win is lane
/// parallelism, not sparsity).
class BatchNetlistSim {
public:
  static constexpr std::size_t kLanes = BatchTape::kLanes;

  explicit BatchNetlistSim(const Netlist& nl);

  /// Latch every register's initial value (all lanes) and settle.
  void reset_state();

  void set_input(NetId n, std::size_t lane, std::uint64_t v);
  void set_input(const std::string& name, std::size_t lane, std::uint64_t v) {
    set_input(nl_.find(name), lane, v);
  }
  /// Same value into every lane.
  void set_input_broadcast(NetId n, std::uint64_t v);

  std::uint64_t get(NetId n, std::size_t lane) const;
  std::uint64_t get(const std::string& name, std::size_t lane) const {
    return get(nl_.find(name), lane);
  }
  /// One bit of net n across all 64 lanes (bit L = lane L's value).
  std::uint64_t plane(NetId n, unsigned bit) const {
    return planes_[bt_.plane_off(n) + bit];
  }

  /// Evaluate every comb in topological order, all lanes at once.
  void settle();
  /// One rising clock edge: settle, latch all registers (all lanes)
  /// simultaneously, settle again.
  void clock_edge();

  const Netlist& netlist() const { return nl_; }
  const BatchTape& tape() const { return bt_; }
  const BatchStats& stats() const { return stats_; }
  void reset_stats() { stats_ = BatchStats{}; }

private:
  const Netlist& nl_;
  BatchTape bt_;
  std::vector<std::uint64_t> planes_;
  std::vector<std::uint64_t> latch_;      ///< register-D plane scratch
  std::vector<std::uint32_t> latch_off_;  ///< per reg, into latch_
  BatchStats stats_;
};

/// Shards a lane population into kLanes-wide blocks over the same
/// dynamic-claiming worker pool ParallelSweep uses.  Block boundaries
/// depend only on `lanes`, and callers store results by block index, so
/// outcomes are bit-identical at any thread count.
class BatchRunner {
public:
  /// fn(block, first_lane, lanes_in_block); blocks may run concurrently,
  /// each on its own worker.  threads == 0 picks hardware concurrency,
  /// threads == 1 runs serially on the calling thread.
  using BlockFn =
      std::function<void(std::size_t, std::size_t, std::size_t)>;

  static std::size_t block_count(std::size_t lanes) {
    return (lanes + BatchTape::kLanes - 1) / BatchTape::kLanes;
  }

  static void run(std::size_t lanes, unsigned threads, const BlockFn& fn);
};

}  // namespace hlcs::synth
