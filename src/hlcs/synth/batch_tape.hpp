// Superlane bit-parallel evaluation of TapeProgram bytecode.
//
// The scalar engine (rtl_sim.hpp) holds every net in one packed uint64
// and evaluates one stimulus vector at a time, leaving 63/64ths of each
// machine word idle for 1-bit nets.  BatchTape transposes that layout:
// every net becomes `width` bit-plane *rows*, each row K consecutive
// uint64 words (a superlane) whose bit 64*j + L is that net-bit's value
// in lane 64*j + L.  One tape instruction over rows then advances
// K x 64 independent simulations at once -- classic bit-parallel gate
// simulation, applied to the existing bytecode.  K is a runtime choice
// from {1, 4, 8} (64 / 256 / 512 lanes per instruction); the inner
// loops carry K as a compile-time constant so the compiler can
// auto-vectorize a row op into one AVX2 (K=4) or AVX-512 (K=8)
// operation when the build enables those ISAs (HLCS_NATIVE_SIMD), and
// into plain unrolled scalar code otherwise.  K=1 reproduces the PR 5
// 64-lane engine and is always built and tested; cpu_superlanes()
// reports the widest K the host's vector units back natively.
//
// The per-instruction dispatch itself is direct-threaded where the
// compiler supports computed goto (one indirect branch per handler,
// giving the predictor one BTB entry per opcode *pair* instead of a
// single shared switch branch), with a portable switch fallback.  On
// top of that, tape compilation runs a superinstruction fusion pass:
// the hottest adjacent pairs/triples in synthesized arbitration tapes
// (push-net feeding a bitwise op, And over a negated net, a compare
// feeding a Mux, a Mux feeding a CSE-slot store) are peepholed into
// single fused handlers, so the common gate shapes cost one dispatch
// instead of two or three.  Fusion is observable: BatchTape reports
// per-opcode compile-time hit counts and BatchStats counts executed
// fused superinstructions.
//
// Ops with per-bit semantics run on rows directly, and Add/Sub/Neg plus
// the ordered comparisons run as K*64-lane ripple carry/borrow chains.
// Combs containing Mul or the data-dependent shifts (Shl/Shr) -- where
// the cross-bit structure depends on lane values -- fall back to
// per-lane scalar evaluation of the SAME tape segment, so every verdict
// stays bit-identical to the scalar engine no matter how a comb is
// classified.  Classification is per-comb and static; BatchStats
// reports the fallback fraction and instruction counts.
//
// BatchNetlistSim stacks the sequential layer on top: K*64 independent
// register files latched together through clock_edge()/settle(), with
// the same reset semantics as NetlistSim.  BatchRunner shards lane
// populations into superlane blocks across the ParallelSweep worker
// pool (results indexed by block, bit-identical at any thread count,
// lane count, or superlane width).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "hlcs/synth/jit.hpp"
#include "hlcs/synth/netlist.hpp"
#include "hlcs/synth/tape.hpp"

namespace hlcs::synth {

/// Widest superlane factor K the host CPU's vector units execute as
/// single instructions: 8 with AVX-512, 4 with AVX2, else 1.  Every K
/// is correct on every host (the row loops compile portably); this only
/// picks the default that amortizes dispatch best without wasting plane
/// work on lanes the hardware cannot stream.
unsigned cpu_superlanes();

/// Batch-engine opcodes: the scalar TapeOps that can run on bit-plane
/// rows, plus the fused superinstructions the peephole pass emits.
/// Mul/Shl/Shr never appear (combs containing them take the scalar
/// fallback and keep their original tape segment).
enum class BOp : std::uint8_t {
  PushConst,
  PushNet,
  PushSlot,
  StoreSlot,
  Not,
  Neg,
  RedOr,
  RedAnd,
  Slice,
  Add,
  Sub,
  And,
  Or,
  Xor,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  Concat,
  Mux,
  // --- fused superinstructions (see BatchTape::fusion_hits) ---------
  AndNet,     ///< PushNet + And:        tos &= net
  OrNet,      ///< PushNet + Or
  XorNet,     ///< PushNet + Xor
  NotNet,     ///< PushNet + Not:        push ~net (masked)
  AndNotNet,  ///< PushNet + Not + And:  tos &= ~net  (priority chains)
  AndNot,     ///< Not + And:            tos &= ~pop  (general operand)
  MuxNet,     ///< PushNet + Mux:        else operand straight from a net
  EqMux,      ///< Eq + Mux:             else operand is a comparison
  NeMux,      ///< Ne + Mux
  MuxStore,   ///< Mux + StoreSlot:      mux written into the CSE slot
  kCount,
};

constexpr std::size_t kFirstFusedBOp = static_cast<std::size_t>(BOp::AndNet);
constexpr std::size_t kNumBOps = static_cast<std::size_t>(BOp::kCount);

/// One batch-engine instruction.  Fused ops reuse the same two operand
/// fields: `aux` is a net, slot or lsb; `imm` is the relevant mask.
struct BatchInsn {
  BOp op;
  std::uint32_t aux = 0;
  std::uint64_t imm = 0;
};

/// Observability counters for the batch engine, mirroring NetlistStats.
/// One "comb evaluation" here advances all lanes() of that comb.
struct BatchStats {
  std::uint64_t settles = 0;             ///< settle() calls
  std::uint64_t edges = 0;               ///< clock_edge() calls
  std::uint64_t combs_evaluated = 0;     ///< comb evaluations (all lanes each)
  std::uint64_t combs_bit_parallel = 0;  ///< evaluated on bit-plane rows
  std::uint64_t combs_scalar = 0;        ///< evaluated via per-lane fallback
  std::uint64_t scalar_lane_evals = 0;   ///< lanes() x combs_scalar
  std::uint64_t plane_instructions = 0;  ///< bit-parallel batch insns executed
  std::uint64_t fused_ops = 0;           ///< fused superinstructions executed
  std::uint64_t scalar_ops = 0;  ///< scalar tape insns executed in fallback

  /// Fraction of comb evaluations that took the scalar fallback.
  double scalar_fraction() const {
    return combs_evaluated == 0
               ? 0.0
               : static_cast<double>(combs_scalar) /
                     static_cast<double>(combs_evaluated);
  }

  BatchStats& operator+=(const BatchStats& o) {
    settles += o.settles;
    edges += o.edges;
    combs_evaluated += o.combs_evaluated;
    combs_bit_parallel += o.combs_bit_parallel;
    combs_scalar += o.combs_scalar;
    scalar_lane_evals += o.scalar_lane_evals;
    plane_instructions += o.plane_instructions;
    fused_ops += o.fused_ops;
    scalar_ops += o.scalar_ops;
    return *this;
  }

  friend bool operator==(const BatchStats&, const BatchStats&) = default;
};

/// Lane-transposed evaluator for a compiled TapeProgram.  Owns the
/// per-comb bit-parallel/scalar classification, the fused batch
/// instruction stream, and the evaluation scratch; the caller owns the
/// plane array (see BatchNetlistSim).
class BatchTape {
public:
  /// Lanes per machine word; one superlane is `super()` words.
  static constexpr std::size_t kLanes = 64;
  static constexpr unsigned kMaxSuper = 8;

  /// `super` must be 1, 4 or 8 (0 picks cpu_superlanes()).
  explicit BatchTape(const Netlist& nl, unsigned super = 1);

  const TapeProgram& program() const { return tape_; }
  unsigned super() const { return super_; }
  /// Simulations advanced per instruction: super() * 64.
  std::size_t lanes() const { return std::size_t{super_} * kLanes; }
  /// First row of net n; the row's words start at row * super() inside
  /// the caller's plane array.
  std::uint32_t plane_off(NetId n) const { return plane_off_[n]; }
  /// Total rows across all nets; the plane array holds
  /// total_planes() * super() words.
  std::uint32_t total_planes() const { return plane_off_.back(); }
  bool comb_bit_parallel(std::size_t ci) const { return bcombs_[ci].parallel; }
  /// Static classification: combs that will take the scalar fallback.
  std::size_t scalar_combs() const { return scalar_combs_; }
  /// Fused superinstructions in the compiled batch stream (static).
  std::uint64_t fused_insns() const { return fused_total_; }
  /// Compile-time fusion hits per fused opcode, for the stats report.
  std::vector<std::pair<std::string, std::uint64_t>> fusion_hits() const;

  /// Evaluate every comb in topological order (one full settle's worth
  /// of work) over `planes`.  Not thread-safe per instance (uses
  /// internal scratch); give each thread its own BatchTape /
  /// BatchNetlistSim.
  void run_all(std::uint64_t* planes, BatchStats& stats);

private:
  /// The batch JIT (hlcs/synth/jit.hpp) compiles against this tape's
  /// plane layout and routes its per-comb deopts back through
  /// run_comb(), so it needs the classification internals.
  friend class BatchJit;

  /// A parallel comb's fused instruction range, or the marker for the
  /// scalar fallback.
  struct BComb {
    std::uint32_t begin = 0;  ///< [begin, end) into bcode_
    std::uint32_t end = 0;
    std::uint32_t fused = 0;  ///< fused superinstructions in the range
    bool parallel = false;
  };

  template <unsigned K>
  void run_combs(std::uint64_t* planes);
  /// Evaluate a single comb through the interpreter (plane or scalar
  /// path per its classification) -- the JIT's per-comb deopt entry.
  void run_comb(std::size_t ci, std::uint64_t* planes);
  template <unsigned K>
  void run_planes(const BComb& bc, NetId target, std::uint64_t* planes);
  void run_lanes(std::size_t ci, std::uint64_t* planes);
  void fuse_comb(const TapeInsn* ip, const TapeInsn* end, BComb& bc);

  /// A plane-stack entry: `p` points either at a net's rows (borrowed)
  /// or at this entry's own fixed 64-row region in stack_planes_.
  /// Rows at index >= w read as an all-zero row (values are stored
  /// masked, so a missing high row is always all-zero).
  struct Entry {
    const std::uint64_t* p;
    unsigned w;
  };

  TapeProgram tape_;
  unsigned super_;
  std::vector<std::uint32_t> plane_off_;  ///< size nets()+1, in rows
  std::vector<unsigned> width_;           ///< net widths
  std::vector<BatchInsn> bcode_;          ///< fused batch stream
  std::vector<BComb> bcombs_;             ///< per comb (topo index)
  std::size_t scalar_combs_ = 0;
  std::array<std::uint64_t, kNumBOps> fusion_hits_{};  ///< compile-time
  std::uint64_t fused_total_ = 0;
  // Per-settle stat increments, precomputed (run_all always evaluates
  // every comb, so these are constants of the tape).
  std::uint64_t plane_insns_per_settle_ = 0;
  std::uint64_t fused_per_settle_ = 0;
  std::uint64_t scalar_insns_per_lane_ = 0;

  // Bit-parallel scratch: one fixed 64-row region per stack slot / CSE
  // slot, so entries never alias each other.
  std::vector<Entry> entries_;
  std::vector<std::uint64_t> stack_planes_;  ///< max_stack x 64 x super
  std::vector<std::uint64_t> slot_planes_;   ///< max_slots x 64 x super
  std::vector<unsigned> slot_w_;

  // Scalar-fallback scratch: per-lane gather/exec buffers.
  std::vector<std::uint64_t> scalar_nets_;  ///< size nets(), sources filled
  std::vector<std::uint64_t> scalar_stack_;
  std::vector<std::uint64_t> scalar_slots_;
  std::vector<std::uint64_t> scalar_res_;  ///< result rows, 64 x super
};

/// K*64 independent netlist simulations stepped in lock step: one
/// shared combinational tape over bit-plane rows, K*64 register files
/// latched together.  The API mirrors NetlistSim with an extra lane
/// index; settle() evaluates the full tape (the batch engine's win is
/// lane parallelism, not sparsity).
class BatchNetlistSim {
public:
  static constexpr std::size_t kLanes = BatchTape::kLanes;

  /// `super` must be 1, 4 or 8 (0 picks cpu_superlanes()).  With
  /// `jit = true` the comb tape runs as native code (hlcs/synth/jit.hpp)
  /// where the host supports it; the flag is a silent no-op otherwise,
  /// so callers can request the JIT unconditionally.
  explicit BatchNetlistSim(const Netlist& nl, unsigned super = 1,
                           bool jit = false);

  unsigned super() const { return bt_.super(); }
  /// Non-null when settles run through the native batch JIT.
  const JitStats* jit_stats() const { return jit_ ? &jit_->stats() : nullptr; }
  /// Independent simulations carried by this instance: super() * 64.
  std::size_t lanes() const { return bt_.lanes(); }

  /// Latch every register's initial value (all lanes) and settle.
  void reset_state();

  void set_input(NetId n, std::size_t lane, std::uint64_t v);
  void set_input(const std::string& name, std::size_t lane, std::uint64_t v) {
    set_input(nl_.find(name), lane, v);
  }
  /// Same value into every lane.
  void set_input_broadcast(NetId n, std::uint64_t v);

  std::uint64_t get(NetId n, std::size_t lane) const;
  std::uint64_t get(const std::string& name, std::size_t lane) const {
    return get(nl_.find(name), lane);
  }
  /// One bit of net n across 64 lanes (bit L = lane 64*word + L).
  std::uint64_t plane(NetId n, unsigned bit, unsigned word = 0) const {
    return planes_[(bt_.plane_off(n) + bit) * bt_.super() + word];
  }

  /// Evaluate every comb in topological order, all lanes at once.
  void settle();
  /// One rising clock edge: settle, latch all registers (all lanes)
  /// simultaneously, settle again.
  void clock_edge();

  const Netlist& netlist() const { return nl_; }
  const BatchTape& tape() const { return bt_; }
  const BatchStats& stats() const { return stats_; }
  void reset_stats() { stats_ = BatchStats{}; }

private:
  const Netlist& nl_;
  BatchTape bt_;
  std::unique_ptr<BatchJit> jit_;  ///< null = interpreter settles
  std::vector<std::uint64_t> planes_;
  std::vector<std::uint64_t> latch_;      ///< register-D row scratch
  std::vector<std::uint32_t> latch_off_;  ///< per reg, into latch_ (rows)
  BatchStats stats_;
};

/// Shards a lane population into superlane blocks over the same
/// dynamic-claiming worker pool ParallelSweep uses.  The partition
/// depends only on (lanes, super) -- full `super`-wide blocks first,
/// then one tail block using the smallest superlane that covers the
/// remainder -- and callers store results by block index, so outcomes
/// are bit-identical at any thread count.
class BatchRunner {
public:
  struct Block {
    std::size_t lane0;  ///< first lane of the block
    std::size_t lanes;  ///< active lanes in the block (<= super * 64)
    unsigned super;     ///< superlane factor the block should run at
  };

  /// fn(block_index, block); blocks may run concurrently, each on its
  /// own worker.  threads == 0 picks hardware concurrency, threads == 1
  /// runs serially on the calling thread.  super == 0 picks
  /// cpu_superlanes().
  using BlockFn = std::function<void(std::size_t, const Block&)>;

  static std::vector<Block> partition(std::size_t lanes, unsigned super);

  static std::size_t block_count(std::size_t lanes, unsigned super = 1) {
    return partition(lanes, super).size();
  }

  static void run(std::size_t lanes, unsigned threads, unsigned super,
                  const BlockFn& fn);
};

}  // namespace hlcs::synth
