// ObjectDesc -- a global object in the synthesisable subset.
//
// This is what the ODETTE tool's input language becomes in this library:
// state variables, plus guarded methods whose guards and bodies are
// expression trees.  Method semantics match hardware registers: all body
// assignments evaluate against the entry state and commit simultaneously
// (parallel assignment), and the return value is computed from the entry
// state.  A method completes in a single grant (one clock cycle after
// synthesis).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "hlcs/synth/expr.hpp"

namespace hlcs::synth {

struct VarDesc {
  std::string name;
  unsigned width;
  std::uint64_t init;
};

struct ArgDesc {
  std::string name;
  unsigned width;
};

struct AssignDesc {
  std::uint32_t var;  ///< index into ObjectDesc::vars()
  ExprId value;
};

struct MethodDesc {
  std::string name;
  std::vector<ArgDesc> args;
  unsigned ret_width = 0;      ///< 0 for void methods
  ExprId guard = kNoExpr;      ///< kNoExpr means "always eligible"
  std::vector<AssignDesc> body;
  ExprId ret = kNoExpr;        ///< required iff ret_width > 0

  unsigned args_total_width() const {
    unsigned w = 0;
    for (const ArgDesc& a : args) w += a.width;
    return w;
  }
};

class ObjectDesc {
public:
  explicit ObjectDesc(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  ExprArena& arena() { return arena_; }
  const ExprArena& arena() const { return arena_; }

  std::uint32_t add_var(std::string var_name, unsigned width,
                        std::uint64_t init = 0) {
    if (width < 1 || width > 64) {
      throw SynthesisError(name_ + ": variable '" + var_name + "' is " +
                           std::to_string(width) +
                           " bits wide; state variables are limited to 1..64 "
                           "bits (one 64-bit word per variable)");
    }
    vars_.push_back(VarDesc{std::move(var_name), width,
                            init & ExprArena::mask(width)});
    return static_cast<std::uint32_t>(vars_.size() - 1);
  }

  /// Fluent helper for building one method.
  class MethodBuilder {
  public:
    MethodBuilder& arg(std::string arg_name, unsigned width) {
      m_->args.push_back(ArgDesc{std::move(arg_name), width});
      return *this;
    }
    MethodBuilder& guard(ExprId g) {
      m_->guard = g;
      return *this;
    }
    MethodBuilder& assign(std::uint32_t var, ExprId value) {
      m_->body.push_back(AssignDesc{var, value});
      return *this;
    }
    MethodBuilder& returns(ExprId value, unsigned width) {
      m_->ret = value;
      m_->ret_width = width;
      return *this;
    }
    std::size_t index() const { return index_; }

  private:
    friend class ObjectDesc;
    MethodBuilder(MethodDesc* m, std::size_t index) : m_(m), index_(index) {}
    MethodDesc* m_;
    std::size_t index_;
  };

  MethodBuilder add_method(std::string method_name) {
    methods_.push_back(MethodDesc{});
    methods_.back().name = std::move(method_name);
    return MethodBuilder(&methods_.back(), methods_.size() - 1);
  }

  // --- expression shorthands bound to this object's arena --------------
  ExprId lit(std::uint64_t v, unsigned w) { return arena_.cst(v, w); }
  ExprId v(std::uint32_t var) {
    HLCS_ASSERT(var < vars_.size(), "v(): bad variable index");
    return arena_.var(var, vars_[var].width);
  }
  ExprId a(std::uint32_t arg_index, unsigned width) {
    return arena_.arg(arg_index, width);
  }

  const std::vector<VarDesc>& vars() const { return vars_; }
  const std::vector<MethodDesc>& methods() const { return methods_; }

  std::size_t method_index(const std::string& method_name) const {
    for (std::size_t i = 0; i < methods_.size(); ++i) {
      if (methods_[i].name == method_name) return i;
    }
    fail("ObjectDesc: no method named " + method_name);
  }

  /// Width of the select port needed to address all methods.
  unsigned sel_width() const {
    unsigned n = static_cast<unsigned>(methods_.size());
    unsigned w = 1;
    while ((1u << w) < n) ++w;
    return w;
  }
  /// Width of the packed argument port (max over methods; min 1).
  unsigned args_width() const {
    unsigned w = 1;
    for (const MethodDesc& m : methods_) {
      w = std::max(w, m.args_total_width());
    }
    return w;
  }
  /// Width of the return port (max over methods; min 1).
  unsigned ret_width() const {
    unsigned w = 1;
    for (const MethodDesc& m : methods_) w = std::max(w, m.ret_width);
    return w;
  }

  /// Structural validation; throws SynthesisError on any violation.
  void validate() const {
    if (methods_.empty()) {
      throw SynthesisError(name_ + ": object has no methods");
    }
    if (vars_.empty()) {
      throw SynthesisError(name_ + ": object has no state variables");
    }
    for (const MethodDesc& m : methods_) {
      if (m.guard != kNoExpr && arena_.at(m.guard).width != 1) {
        throw SynthesisError(name_ + "." + m.name + ": guard must be 1 bit");
      }
      if ((m.ret_width > 0) != (m.ret != kNoExpr)) {
        throw SynthesisError(name_ + "." + m.name +
                             ": return width and expression must both be set");
      }
      if (m.ret != kNoExpr && arena_.at(m.ret).width != m.ret_width) {
        throw SynthesisError(name_ + "." + m.name + ": return width mismatch");
      }
      if (m.args_total_width() > 64) {
        throw SynthesisError(name_ + "." + m.name +
                             ": packed arguments exceed 64 bits");
      }
      std::vector<bool> assigned(vars_.size(), false);
      for (const AssignDesc& as : m.body) {
        if (as.var >= vars_.size()) {
          throw SynthesisError(name_ + "." + m.name +
                               ": assignment to unknown variable");
        }
        if (assigned[as.var]) {
          throw SynthesisError(name_ + "." + m.name + ": variable '" +
                               vars_[as.var].name + "' assigned twice");
        }
        assigned[as.var] = true;
        if (arena_.at(as.value).width != vars_[as.var].width) {
          throw SynthesisError(name_ + "." + m.name + ": width mismatch on '" +
                               vars_[as.var].name + "'");
        }
      }
      check_leaves(m);
    }
  }

private:
  /// Guards/bodies may reference vars and the method's own args; verify
  /// leaf indices and widths line up with the declarations.
  void check_leaves(const MethodDesc& m) const {
    std::vector<ExprId> roots;
    if (m.guard != kNoExpr) roots.push_back(m.guard);
    if (m.ret != kNoExpr) roots.push_back(m.ret);
    for (const AssignDesc& as : m.body) roots.push_back(as.value);
    for (ExprId root : roots) {
      check_leaves_rec(m, root);
    }
  }
  void check_leaves_rec(const MethodDesc& m, ExprId id) const {
    const ExprNode& n = arena_.at(id);
    if (n.op == ExprOp::Var) {
      if (n.imm >= vars_.size() || n.width != vars_[n.imm].width) {
        throw SynthesisError(name_ + "." + m.name + ": bad Var leaf");
      }
    } else if (n.op == ExprOp::Arg) {
      if (n.imm >= m.args.size() || n.width != m.args[n.imm].width) {
        throw SynthesisError(name_ + "." + m.name + ": bad Arg leaf");
      }
    }
    if (n.a != kNoExpr) check_leaves_rec(m, n.a);
    if (n.b != kNoExpr) check_leaves_rec(m, n.b);
    if (n.c != kNoExpr) check_leaves_rec(m, n.c);
  }

  std::string name_;
  ExprArena arena_;
  std::vector<VarDesc> vars_;
  std::vector<MethodDesc> methods_;
};

}  // namespace hlcs::synth
