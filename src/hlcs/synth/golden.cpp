// GoldenCycleModel method bodies.  Out-of-line on purpose: this model
// is correctness machinery (the equivalence checker's reference side),
// and keeping its code in the library keeps every including TU --
// notably the microbenchmark binaries -- insensitive to its growth.
#include "hlcs/synth/golden.hpp"

namespace hlcs::synth {

GoldenCycleModel::GoldenCycleModel(const ObjectDesc& desc,
                                   const SynthOptions& opt)
    : desc_(desc), opt_(opt), interp_(desc) {
  if (opt_.priorities.empty()) {
    for (std::size_t i = 0; i < opt_.clients; ++i) {
      prio_.push_back(static_cast<int>(opt_.clients - i));
    }
  } else {
    HLCS_ASSERT(opt_.priorities.size() == opt_.clients,
                "priorities size must equal client count");
    prio_ = opt_.priorities;
  }
  reset();
}

void GoldenCycleModel::reset() {
  interp_.reset();
  rr_last_ = opt_.clients - 1;
  ages_.assign(opt_.clients, 0);
  streaks_.assign(opt_.clients, 0);
  wcnt_ = 0;
  hcnt_ = 0;
  mode_hot_ = false;
  lfsr_ = opt_.lfsr_seed;
}

GoldenCycleModel::StepResult GoldenCycleModel::step(
    const std::vector<ClientIn>& in, bool rst) {
  HLCS_ASSERT(in.size() == opt_.clients, "step: client count mismatch");
  StepResult result;
  if (rst) {
    reset();
    return result;
  }
  const std::size_t n_methods = desc_.methods().size();
  std::vector<bool> elig(opt_.clients, false);
  for (std::size_t i = 0; i < opt_.clients; ++i) {
    if (!in[i].req || in[i].sel >= n_methods) continue;
    const MethodDesc& m = desc_.methods()[in[i].sel];
    elig[i] = interp_.guard_ok(in[i].sel, unpack_args(m, in[i].args));
  }
  std::optional<std::size_t> pick = arbitrate(elig);
  if (pick) {
    const std::size_t i = *pick;
    const MethodDesc& m = desc_.methods()[in[i].sel];
    result.ret = interp_.invoke(in[i].sel, unpack_args(m, in[i].args));
    result.granted = i;
    result.sel = in[i].sel;
  }
  update_arb_state(in, elig, pick);
  return result;
}

std::optional<std::size_t> GoldenCycleModel::arbitrate(
    const std::vector<bool>& elig) {
  switch (opt_.policy) {
    case osss::PolicyKind::StaticPriority: {
      std::optional<std::size_t> best;
      for (std::size_t i = 0; i < opt_.clients; ++i) {
        if (!elig[i]) continue;
        if (!best || prio_[i] > prio_[*best]) best = i;
      }
      return best;
    }
    case osss::PolicyKind::RoundRobin: {
      // First eligible index > rr_last_, else first eligible overall.
      for (std::size_t i = rr_last_ + 1; i < opt_.clients; ++i) {
        if (elig[i]) return i;
      }
      for (std::size_t i = 0; i < opt_.clients; ++i) {
        if (elig[i]) return i;
      }
      return std::nullopt;
    }
    case osss::PolicyKind::Fifo: {
      // Oldest age wins; ties to the lower index.
      std::optional<std::size_t> best;
      for (std::size_t i = 0; i < opt_.clients; ++i) {
        if (!elig[i]) continue;
        if (!best || ages_[i] > ages_[*best]) best = i;
      }
      return best;
    }
    case osss::PolicyKind::Random: {
      const std::size_t offset = lfsr_offset();
      for (std::size_t r = 0; r < opt_.clients; ++r) {
        const std::size_t i = (offset + r) % opt_.clients;
        if (elig[i]) return i;
      }
      return std::nullopt;
    }
    case osss::PolicyKind::Adaptive: {
      // Mirror of make_arbiter_adaptive: the aged lane and the hot
      // mode key on the eligible streak, the cold mode on the request
      // age; max key wins, ties to the lower index.
      bool any_aged = false;
      for (std::size_t i = 0; i < opt_.clients; ++i) {
        if (elig[i] && streaks_[i] >= opt_.adaptive_starve_bound) {
          any_aged = true;
        }
      }
      const bool use_streak = mode_hot_ || any_aged;
      std::optional<std::size_t> best;
      std::uint64_t best_key = 0;
      for (std::size_t i = 0; i < opt_.clients; ++i) {
        if (!elig[i]) continue;
        if (any_aged && streaks_[i] < opt_.adaptive_starve_bound) continue;
        const std::uint64_t key = use_streak ? streaks_[i] : ages_[i];
        if (!best || key > best_key) {
          best = i;
          best_key = key;
        }
      }
      return best;
    }
  }
  return std::nullopt;
}

std::size_t GoldenCycleModel::lfsr_offset() const {
  unsigned idx_w = 1;
  while ((1ull << idx_w) < opt_.clients) ++idx_w;
  std::uint64_t raw = lfsr_ & ((1ull << idx_w) - 1);
  if (raw >= opt_.clients) raw -= opt_.clients;
  return static_cast<std::size_t>(raw);
}

void GoldenCycleModel::update_arb_state(const std::vector<ClientIn>& in,
                                        const std::vector<bool>& elig,
                                        std::optional<std::size_t> granted) {
  if (opt_.policy == osss::PolicyKind::RoundRobin && granted) {
    rr_last_ = *granted;
  }
  if (opt_.policy == osss::PolicyKind::Fifo ||
      opt_.policy == osss::PolicyKind::Adaptive) {
    const std::uint64_t max_age = ExprArena::mask(opt_.fifo_age_width);
    for (std::size_t i = 0; i < opt_.clients; ++i) {
      if ((granted && *granted == i) || !in[i].req) {
        ages_[i] = 0;
      } else if (ages_[i] < max_age) {
        ages_[i]++;
      }
    }
  }
  if (opt_.policy == osss::PolicyKind::Adaptive) {
    const std::uint64_t max_age = ExprArena::mask(opt_.fifo_age_width);
    bool any_elig = false;
    unsigned n_elig = 0;
    for (std::size_t i = 0; i < opt_.clients; ++i) {
      if (elig[i]) {
        any_elig = true;
        ++n_elig;
      }
      if ((granted && *granted == i) || !elig[i]) {
        streaks_[i] = 0;
      } else if (streaks_[i] < max_age) {
        streaks_[i]++;
      }
    }
    // Window counters advance only on steps with an eligible client,
    // exactly as in the netlist.
    if (any_elig) {
      const std::uint64_t window =
          std::uint64_t{1} << opt_.adaptive_window_log2;
      const std::uint64_t h_sum = hcnt_ + (n_elig >= 2 ? 1 : 0);
      if (wcnt_ == window - 1) {
        mode_hot_ = h_sum >= opt_.adaptive_hot_threshold;
        hcnt_ = 0;
        wcnt_ = 0;
      } else {
        hcnt_ = h_sum;
        ++wcnt_;
      }
    }
  }
  if (opt_.policy == osss::PolicyKind::Random) {
    // Fibonacci LFSR, taps 16,14,13,11 -- identical to the netlist.
    const std::uint16_t l = lfsr_;
    const std::uint16_t fb =
        ((l >> 0) ^ (l >> 2) ^ (l >> 3) ^ (l >> 5)) & 1u;
    lfsr_ = static_cast<std::uint16_t>((l >> 1) | (fb << 15));
  }
}

}  // namespace hlcs::synth
