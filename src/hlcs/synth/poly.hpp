// Hardware polymorphism -- the second headline feature of SystemC+:
// "an hardware oriented version of the object oriented polymorphism"
// with "late-binding procedure invocation semantics".
//
// A polymorphic object is a set of implementation classes sharing one
// interface (identical method names / argument widths / return widths);
// which implementation executes is selected at RUNTIME by the object's
// dynamic type.  The ODETTE tool compiled this into muxed dispatch over
// a type tag; make_polymorphic() performs the same source-to-source
// transform inside the synthesisable subset:
//
//   * one __type tag register (re-assignable through a generated
//     set_type(tag) method -- the hardware analogue of assigning a new
//     derived-class value to a polymorphic container);
//   * every implementation's state variables instantiated side by side,
//     prefixed with the implementation name;
//   * each interface method's guard / body / return value becomes a mux
//     over the tag of the implementations' expressions; variables not
//     owned by the active implementation hold their value.
//
// The result is an ordinary ObjectDesc, so the interpreter, the
// synthesiser, the golden model, and the Verilog emitter all work on
// polymorphic objects with no special cases -- exactly the property that
// made the ODETTE approach synthesisable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hlcs/synth/object_desc.hpp"

namespace hlcs::synth {

struct PolymorphicLayout {
  /// Index of the __type variable in the flattened object.
  std::uint32_t type_var = 0;
  /// flattened var index = var_base[impl] + original var index.
  std::vector<std::uint32_t> var_base;
  /// Method index of the generated set_type method.
  std::size_t set_type_method = 0;
};

/// Verify all implementations expose the same interface; throws
/// SynthesisError otherwise.
void check_same_interface(const std::vector<const ObjectDesc*>& impls);

/// Flatten implementations behind a late-binding dispatch.  The returned
/// object has the shared interface methods (same indices as in every
/// implementation) plus a final `set_type(tag)` method; `layout`
/// describes where everything landed.
ObjectDesc make_polymorphic(const std::string& name,
                            const std::vector<const ObjectDesc*>& impls,
                            std::uint64_t initial_type,
                            PolymorphicLayout* layout = nullptr);

}  // namespace hlcs::synth
