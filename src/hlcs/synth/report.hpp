// Synthesis resource report: flip-flop and estimated gate counts, logic
// depth.  The gate model is deliberately simple (unit NAND2-equivalents
// per operator bit) -- it supports relative comparisons across synthesis
// options (the ablation benches), not absolute area claims.
#pragma once

#include <cstdint>
#include <string>

#include "hlcs/synth/netlist.hpp"

namespace hlcs::synth {

struct ResourceReport {
  std::string design;
  std::size_t nets = 0;
  std::size_t inputs = 0;
  std::size_t outputs = 0;
  std::size_t flip_flops = 0;     ///< total register bits
  std::size_t comb_nodes = 0;     ///< expression nodes in comb logic
  std::size_t gate_estimate = 0;  ///< NAND2-equivalent estimate
  unsigned logic_depth = 0;       ///< max levels of logic over all combs

  std::string to_string() const;
};

ResourceReport report(const Netlist& nl);

}  // namespace hlcs::synth
