#include "hlcs/synth/report.hpp"

#include <functional>
#include <sstream>

namespace hlcs::synth {

namespace {

/// NAND2-equivalent cost of one expression node.
std::size_t gate_cost(const ExprNode& n, const ExprArena& arena) {
  const std::size_t w = n.width;
  switch (n.op) {
    case ExprOp::Const: case ExprOp::Var: case ExprOp::Arg:
    case ExprOp::ZExt: case ExprOp::Slice: case ExprOp::Concat:
      return 0;  // wiring
    case ExprOp::Not:
      return w;
    case ExprOp::Neg:
      return 4 * w;  // inverter + increment
    case ExprOp::RedOr: case ExprOp::RedAnd:
      return arena.at(n.a).width - 1;
    case ExprOp::And: case ExprOp::Or:
      return w;
    case ExprOp::Xor:
      return 3 * w;
    case ExprOp::Add: case ExprOp::Sub:
      return 5 * w;  // ripple full adders
    case ExprOp::Mul:
      return 6 * w * w;
    case ExprOp::Eq: case ExprOp::Ne:
      return 3 * arena.at(n.a).width;
    case ExprOp::Lt: case ExprOp::Le: case ExprOp::Gt: case ExprOp::Ge:
      return 5 * arena.at(n.a).width;
    case ExprOp::Shl: case ExprOp::Shr:
      return 3 * w * 6;  // barrel shifter stages (log2 64)
    case ExprOp::Mux:
      return 3 * w;
  }
  return 0;
}

}  // namespace

ResourceReport report(const Netlist& nl) {
  ResourceReport r;
  r.design = nl.name();
  r.nets = nl.nets().size();
  r.inputs = nl.inputs().size();
  r.outputs = nl.outputs().size();
  for (const RegDesc& reg : nl.regs()) {
    r.flip_flops += nl.nets()[reg.q].width;
  }

  const ExprArena& arena = nl.arena();
  std::function<void(ExprId)> count = [&](ExprId id) {
    const ExprNode& n = arena.at(id);
    r.comb_nodes++;
    r.gate_estimate += gate_cost(n, arena);
    if (n.a != kNoExpr && n.op != ExprOp::Var) count(n.a);
    if (n.b != kNoExpr) count(n.b);
    if (n.c != kNoExpr) count(n.c);
  };
  for (const CombAssign& c : nl.combs()) {
    count(c.value);
    unsigned d = depth(arena, c.value);
    if (d > r.logic_depth) r.logic_depth = d;
  }
  return r;
}

std::string ResourceReport::to_string() const {
  std::ostringstream os;
  os << design << ": " << flip_flops << " FFs, ~" << gate_estimate
     << " gates, depth " << logic_depth << ", " << nets << " nets ("
     << inputs << " in / " << outputs << " out), " << comb_nodes
     << " comb nodes";
  return os.str();
}

}  // namespace hlcs::synth
