#include "hlcs/synth/parser.hpp"

#include <cctype>
#include <memory>
#include <unordered_map>
#include <vector>

namespace hlcs::synth {

namespace {

// ----------------------------------------------------------------------
// Lexer
// ----------------------------------------------------------------------

enum class Tok {
  Ident, Number, Punct, End,
};

struct Token {
  Tok kind = Tok::End;
  std::string text;          // identifier / punct spelling
  std::uint64_t value = 0;   // Number
  unsigned ann_width = 0;    // Number: annotated width (0 = none)
  int line = 0, col = 0;
};

class Lexer {
public:
  explicit Lexer(const std::string& src) : src_(src) { advance(); }

  const Token& peek() const { return cur_; }
  Token take() {
    Token t = cur_;
    advance();
    return t;
  }

  [[noreturn]] void error(const std::string& msg, const Token& at) const {
    throw ParseError("parse error at " + std::to_string(at.line) + ":" +
                     std::to_string(at.col) + ": " + msg);
  }

private:
  void advance() {
    skip_ws();
    cur_ = Token{};
    cur_.line = line_;
    cur_.col = col_;
    if (pos_ >= src_.size()) {
      cur_.kind = Tok::End;
      return;
    }
    const char c = src_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string id;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
              src_[pos_] == '_')) {
        id.push_back(src_[pos_]);
        bump();
      }
      cur_.kind = Tok::Ident;
      cur_.text = std::move(id);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      lex_number();
      return;
    }
    // Multi-char operators first.
    static const char* two[] = {"==", "!=", "<=", ">=", "<<", ">>",
                                "&&", "||"};
    if (pos_ + 1 < src_.size()) {
      const std::string pair = src_.substr(pos_, 2);
      for (const char* op : two) {
        if (pair == op) {
          cur_.kind = Tok::Punct;
          cur_.text = pair;
          bump();
          bump();
          return;
        }
      }
    }
    cur_.kind = Tok::Punct;
    cur_.text = std::string(1, c);
    bump();
  }

  void lex_number() {
    // Forms: 123, 0x1F, W'dNNN, W'hNN, W'bNNN.
    std::uint64_t first = 0;
    std::size_t digits = 0;
    while (pos_ < src_.size() &&
           std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
      first = first * 10 + static_cast<std::uint64_t>(src_[pos_] - '0');
      ++digits;
      bump();
    }
    cur_.kind = Tok::Number;
    if (pos_ < src_.size() && src_[pos_] == '\'') {
      bump();
      if (pos_ >= src_.size()) err_here("truncated sized literal");
      const char base = src_[pos_];
      bump();
      std::uint64_t v = 0;
      bool any = false;
      auto hexval = [](char h) -> int {
        if (h >= '0' && h <= '9') return h - '0';
        if (h >= 'a' && h <= 'f') return h - 'a' + 10;
        if (h >= 'A' && h <= 'F') return h - 'A' + 10;
        return -1;
      };
      while (pos_ < src_.size()) {
        const char d = src_[pos_];
        int dv;
        if (base == 'd') {
          if (!std::isdigit(static_cast<unsigned char>(d))) break;
          dv = d - '0';
          v = v * 10 + static_cast<std::uint64_t>(dv);
        } else if (base == 'h') {
          dv = hexval(d);
          if (dv < 0) break;
          v = v * 16 + static_cast<std::uint64_t>(dv);
        } else if (base == 'b') {
          if (d != '0' && d != '1') break;
          v = v * 2 + static_cast<std::uint64_t>(d - '0');
        } else {
          err_here("bad literal base (expect d/h/b)");
        }
        any = true;
        bump();
      }
      if (!any) err_here("sized literal without digits");
      if (first < 1 || first > 64) err_here("literal width out of [1,64]");
      cur_.value = v;
      cur_.ann_width = static_cast<unsigned>(first);
      return;
    }
    if (digits == 1 && first == 0 && pos_ < src_.size() &&
        (src_[pos_] == 'x' || src_[pos_] == 'X')) {
      bump();
      std::uint64_t v = 0;
      bool any = false;
      while (pos_ < src_.size() &&
             std::isxdigit(static_cast<unsigned char>(src_[pos_]))) {
        const char d = src_[pos_];
        const int dv = std::isdigit(static_cast<unsigned char>(d))
                           ? d - '0'
                           : (std::tolower(d) - 'a' + 10);
        v = v * 16 + static_cast<std::uint64_t>(dv);
        any = true;
        bump();
      }
      if (!any) err_here("0x without digits");
      cur_.value = v;
      return;
    }
    cur_.value = first;
  }

  [[noreturn]] void err_here(const std::string& msg) {
    throw ParseError("parse error at " + std::to_string(line_) + ":" +
                     std::to_string(col_) + ": " + msg);
  }

  void skip_ws() {
    for (;;) {
      while (pos_ < src_.size() &&
             std::isspace(static_cast<unsigned char>(src_[pos_]))) {
        bump();
      }
      // // line comments and /* block comments */
      if (pos_ + 1 < src_.size() && src_[pos_] == '/' &&
          src_[pos_ + 1] == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') bump();
        continue;
      }
      if (pos_ + 1 < src_.size() && src_[pos_] == '/' &&
          src_[pos_ + 1] == '*') {
        bump();
        bump();
        while (pos_ + 1 < src_.size() &&
               !(src_[pos_] == '*' && src_[pos_ + 1] == '/')) {
          bump();
        }
        if (pos_ + 1 >= src_.size()) err_here("unterminated block comment");
        bump();
        bump();
        continue;
      }
      break;
    }
  }

  void bump() {
    if (src_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1, col_ = 1;
  Token cur_;
};

// ----------------------------------------------------------------------
// AST
// ----------------------------------------------------------------------

struct Ast {
  enum class Kind { Num, Ref, Un, Bin, Tern, Zext, Slice, Concat, Red } kind;
  // Num
  std::uint64_t value = 0;
  unsigned ann_width = 0;
  // Ref
  std::string name;
  // Un / Bin: op spelling ("!", "~", "-", "+", "==", "&&", ...)
  std::string op;
  std::unique_ptr<Ast> a, b, c;
  // Zext/Slice numeric parameters
  unsigned p0 = 0, p1 = 0;
  int line = 0, col = 0;
};

using AstPtr = std::unique_ptr<Ast>;

// ----------------------------------------------------------------------
// Parser (recursive descent)
// ----------------------------------------------------------------------

class Parser {
public:
  explicit Parser(const std::string& src) : lex_(src) {}

  ObjectDesc parse() {
    ObjectDesc d = parse_one();
    if (lex_.peek().kind != Tok::End) {
      lex_.error("trailing input after object", lex_.peek());
    }
    return d;
  }

  std::vector<ObjectDesc> parse_all() {
    std::vector<ObjectDesc> out;
    while (lex_.peek().kind != Tok::End) out.push_back(parse_one());
    if (out.empty()) lex_.error("no objects in input", lex_.peek());
    return out;
  }

private:
  ObjectDesc parse_one() {
    vars_.clear();
    args_.clear();
    expect_ident("object");
    const std::string name = take_ident("object name");
    ObjectDesc d(name);
    expect_punct("{");
    while (!at_punct("}")) {
      if (at_ident("var")) {
        parse_var(d);
      } else if (at_ident("method")) {
        parse_method(d);
      } else {
        lex_.error("expected 'var' or 'method'", lex_.peek());
      }
    }
    expect_punct("}");
    d.validate();
    return d;
  }

  // --- declarations ------------------------------------------------------
  void parse_var(ObjectDesc& d) {
    expect_ident("var");
    const std::string name = take_ident("variable name");
    if (vars_.count(name)) lex_.error("duplicate variable " + name, lex_.peek());
    expect_punct(":");
    const unsigned width = take_width("variable '" + name + "'");
    std::uint64_t init = 0;
    if (at_punct("=")) {
      expect_punct("=");
      const Token t = lex_.take();
      if (t.kind != Tok::Number) lex_.error("expected literal initial value", t);
      init = t.value;
    }
    expect_punct(";");
    vars_[name] = {d.add_var(name, width, init), width};
  }

  void parse_method(ObjectDesc& d) {
    expect_ident("method");
    const std::string name = take_ident("method name");
    auto b = d.add_method(name);
    args_.clear();
    if (at_punct("(")) {
      expect_punct("(");
      std::uint32_t index = 0;
      while (!at_punct(")")) {
        const std::string an = take_ident("argument name");
        expect_punct(":");
        const unsigned aw = take_width("argument '" + an + "'");
        b.arg(an, aw);
        args_[an] = {index++, aw};
        if (at_punct(",")) expect_punct(",");
      }
      expect_punct(")");
    }
    AstPtr guard;
    if (at_ident("guard")) {
      expect_ident("guard");
      guard = parse_expr();
    }
    unsigned ret_width = 0;
    if (at_ident("returns")) {
      expect_ident("returns");
      ret_width = take_width("return value of method '" + name + "'");
    }
    expect_punct("{");
    if (guard) b.guard(lower_bool(d, *guard));
    std::vector<ParsedAssign> assigns;
    AstPtr ret_ast;
    parse_stmt_list(assigns, ret_width > 0 ? &ret_ast : nullptr);
    expect_punct("}");
    for (ParsedAssign& pa : assigns) {
      auto it = vars_.find(pa.var);
      if (it == vars_.end()) {
        lex_.error("unknown variable " + pa.var, lex_.peek());
      }
      b.assign(it->second.first, lower(d, *pa.value, it->second.second));
    }
    if (ret_width > 0) {
      if (!ret_ast) {
        lex_.error("method '" + name + "' declares returns but has no return",
                   lex_.peek());
      }
      b.returns(lower(d, *ret_ast, ret_width), ret_width);
    }
  }

  // --- statements ----------------------------------------------------------
  struct ParsedAssign {
    std::string var;
    AstPtr value;
  };

  static AstPtr clone_ast(const Ast& n) {
    auto c = std::make_unique<Ast>();
    c->kind = n.kind;
    c->value = n.value;
    c->ann_width = n.ann_width;
    c->name = n.name;
    c->op = n.op;
    c->p0 = n.p0;
    c->p1 = n.p1;
    c->line = n.line;
    c->col = n.col;
    if (n.a) c->a = clone_ast(*n.a);
    if (n.b) c->b = clone_ast(*n.b);
    if (n.c) c->c = clone_ast(*n.c);
    return c;
  }

  /// Parse statements until the next '}' (not consumed).  `ret_out`
  /// non-null iff a top-level `return` is allowed here.
  void parse_stmt_list(std::vector<ParsedAssign>& out, AstPtr* ret_out) {
    auto find_assign = [&out](const std::string& v) -> ParsedAssign* {
      for (ParsedAssign& pa : out) {
        if (pa.var == v) return &pa;
      }
      return nullptr;
    };
    while (!at_punct("}")) {
      if (at_ident("return")) {
        const Token t = lex_.peek();
        expect_ident("return");
        if (!ret_out) {
          lex_.error("return is only allowed at the top level of a method "
                     "with 'returns'",
                     t);
        }
        if (*ret_out) lex_.error("multiple return statements", t);
        *ret_out = parse_expr();
        expect_punct(";");
        continue;
      }
      if (at_ident("if")) {
        parse_if(out, find_assign);
        continue;
      }
      const Token t = lex_.peek();
      const std::string vn = take_ident("variable name");
      if (!vars_.count(vn)) lex_.error("unknown variable " + vn, t);
      if (find_assign(vn)) {
        lex_.error("variable '" + vn + "' assigned twice in one method", t);
      }
      expect_punct("=");
      AstPtr e = parse_expr();
      expect_punct(";");
      out.push_back(ParsedAssign{vn, std::move(e)});
    }
  }

  /// `if (cond) { ... } [else { ... }]` -- lowered to conditional
  /// parallel assignment: every variable touched in either branch gets
  /// next = cond ? then-value : else-value (holding its old value on the
  /// untaken side).
  template <class FindFn>
  void parse_if(std::vector<ParsedAssign>& out, FindFn find_assign) {
    const Token t = lex_.peek();
    expect_ident("if");
    expect_punct("(");
    AstPtr cond = parse_expr();
    expect_punct(")");
    std::vector<ParsedAssign> then_a, else_a;
    expect_punct("{");
    parse_stmt_list(then_a, nullptr);
    expect_punct("}");
    if (at_ident("else")) {
      expect_ident("else");
      expect_punct("{");
      parse_stmt_list(else_a, nullptr);
      expect_punct("}");
    }
    auto take_from = [](std::vector<ParsedAssign>& v,
                        const std::string& var) -> AstPtr {
      for (ParsedAssign& pa : v) {
        if (pa.var == var && pa.value) return std::move(pa.value);
      }
      return nullptr;
    };
    auto hold = [&](const std::string& var) {
      auto r = std::make_unique<Ast>();
      r->kind = Ast::Kind::Ref;
      r->name = var;
      r->line = t.line;
      r->col = t.col;
      return r;
    };
    // Merge, preserving then-branch order, then else-only variables.
    std::vector<std::string> order;
    for (const ParsedAssign& pa : then_a) order.push_back(pa.var);
    for (const ParsedAssign& pa : else_a) {
      bool seen = false;
      for (const std::string& v : order) seen |= (v == pa.var);
      if (!seen) order.push_back(pa.var);
    }
    for (const std::string& var : order) {
      if (find_assign(var)) {
        lex_.error("variable '" + var + "' assigned twice in one method", t);
      }
      AstPtr tv = take_from(then_a, var);
      AstPtr fv = take_from(else_a, var);
      auto m = std::make_unique<Ast>();
      m->kind = Ast::Kind::Tern;
      m->line = t.line;
      m->col = t.col;
      m->a = clone_ast(*cond);
      m->b = tv ? std::move(tv) : hold(var);
      m->c = fv ? std::move(fv) : hold(var);
      out.push_back(ParsedAssign{var, std::move(m)});
    }
  }

  // --- expression grammar ------------------------------------------------
  AstPtr parse_expr() { return parse_ternary(); }

  AstPtr parse_ternary() {
    AstPtr c = parse_binary(0);
    if (!at_punct("?")) return c;
    expect_punct("?");
    AstPtr t = parse_expr();
    expect_punct(":");
    AstPtr f = parse_expr();
    auto n = node(Ast::Kind::Tern);
    n->a = std::move(c);
    n->b = std::move(t);
    n->c = std::move(f);
    return n;
  }

  static int precedence(const std::string& op) {
    if (op == "||") return 1;
    if (op == "&&") return 2;
    if (op == "|") return 3;
    if (op == "^") return 4;
    if (op == "&") return 5;
    if (op == "==" || op == "!=") return 6;
    if (op == "<" || op == "<=" || op == ">" || op == ">=") return 7;
    if (op == "<<" || op == ">>") return 8;
    if (op == "+" || op == "-") return 9;
    if (op == "*") return 10;
    return -1;
  }

  AstPtr parse_binary(int min_prec) {
    AstPtr lhs = parse_unary();
    for (;;) {
      if (lex_.peek().kind != Tok::Punct) return lhs;
      const std::string op = lex_.peek().text;
      const int prec = precedence(op);
      if (prec < 0 || prec < min_prec) return lhs;
      lex_.take();
      AstPtr rhs = parse_binary(prec + 1);
      auto n = node(Ast::Kind::Bin);
      n->op = op;
      n->a = std::move(lhs);
      n->b = std::move(rhs);
      lhs = std::move(n);
    }
  }

  AstPtr parse_unary() {
    if (lex_.peek().kind == Tok::Punct) {
      const std::string op = lex_.peek().text;
      if (op == "!" || op == "~" || op == "-") {
        lex_.take();
        auto n = node(Ast::Kind::Un);
        n->op = op;
        n->a = parse_unary();
        return n;
      }
    }
    return parse_primary();
  }

  AstPtr parse_primary() {
    const Token t = lex_.peek();
    if (t.kind == Tok::Number) {
      lex_.take();
      auto n = node(Ast::Kind::Num);
      n->value = t.value;
      n->ann_width = t.ann_width;
      return n;
    }
    if (t.kind == Tok::Punct && t.text == "(") {
      expect_punct("(");
      AstPtr e = parse_expr();
      expect_punct(")");
      return e;
    }
    if (t.kind == Tok::Ident) {
      if (t.text == "true" || t.text == "false") {
        lex_.take();
        auto n = node(Ast::Kind::Num);
        n->value = t.text == "true" ? 1 : 0;
        n->ann_width = 1;
        return n;
      }
      if (t.text == "zext" || t.text == "slice" || t.text == "concat" ||
          t.text == "redor" || t.text == "redand") {
        return parse_builtin(t.text);
      }
      lex_.take();
      auto n = node(Ast::Kind::Ref);
      n->name = t.text;
      return n;
    }
    lex_.error("expected expression", t);
  }

  AstPtr parse_builtin(const std::string& fn) {
    lex_.take();
    expect_punct("(");
    if (fn == "zext") {
      auto n = node(Ast::Kind::Zext);
      n->a = parse_expr();
      expect_punct(",");
      n->p0 = take_width("zext target width");
      expect_punct(")");
      return n;
    }
    if (fn == "slice") {
      auto n = node(Ast::Kind::Slice);
      n->a = parse_expr();
      expect_punct(",");
      n->p0 = take_number("slice lsb");
      expect_punct(",");
      n->p1 = take_width("slice width");
      expect_punct(")");
      return n;
    }
    if (fn == "concat") {
      auto n = node(Ast::Kind::Concat);
      n->a = parse_expr();
      expect_punct(",");
      n->b = parse_expr();
      expect_punct(")");
      return n;
    }
    auto n = node(Ast::Kind::Red);
    n->op = fn;
    n->a = parse_expr();
    expect_punct(")");
    return n;
  }

  // --- width inference + lowering ----------------------------------------
  /// Natural width: 0 means "flexible literal subtree".
  unsigned natural(const Ast& n) {
    switch (n.kind) {
      case Ast::Kind::Num:
        return n.ann_width;
      case Ast::Kind::Ref: {
        if (auto it = vars_.find(n.name); it != vars_.end()) {
          return it->second.second;
        }
        if (auto it = args_.find(n.name); it != args_.end()) {
          return it->second.second;
        }
        err(n, "unknown identifier '" + n.name + "'");
      }
      case Ast::Kind::Un:
        if (n.op == "!") return 1;
        return natural(*n.a);
      case Ast::Kind::Bin: {
        if (n.op == "&&" || n.op == "||" || n.op == "==" || n.op == "!=" ||
            n.op == "<" || n.op == "<=" || n.op == ">" || n.op == ">=") {
          return 1;
        }
        if (n.op == "<<" || n.op == ">>") return natural(*n.a);
        const unsigned wa = natural(*n.a);
        const unsigned wb = natural(*n.b);
        if (wa && wb && wa != wb) {
          err(n, "operand widths differ (" + std::to_string(wa) + " vs " +
                     std::to_string(wb) + "); use zext/slice");
        }
        return wa ? wa : wb;
      }
      case Ast::Kind::Tern: {
        const unsigned wt = natural(*n.b);
        const unsigned wf = natural(*n.c);
        if (wt && wf && wt != wf) err(n, "ternary branch widths differ");
        return wt ? wt : wf;
      }
      case Ast::Kind::Zext:
        return n.p0;
      case Ast::Kind::Slice:
        return n.p1;
      case Ast::Kind::Concat: {
        const unsigned wa = natural(*n.a);
        const unsigned wb = natural(*n.b);
        if (!wa || !wb) err(n, "concat operands need explicit widths");
        return wa + wb;
      }
      case Ast::Kind::Red:
        return 1;
    }
    return 0;
  }

  ExprId lower(ObjectDesc& d, const Ast& n, unsigned want) {
    auto& A = d.arena();
    switch (n.kind) {
      case Ast::Kind::Num: {
        unsigned w = n.ann_width ? n.ann_width : want;
        if (w == 0) err(n, "cannot infer literal width; annotate as W'dN");
        if (n.ann_width && want && n.ann_width != want) {
          err(n, "literal width " + std::to_string(n.ann_width) +
                     " does not match context width " + std::to_string(want));
        }
        return A.cst(n.value, w);
      }
      case Ast::Kind::Ref: {
        if (auto it = vars_.find(n.name); it != vars_.end()) {
          check_want(n, it->second.second, want);
          return A.var(it->second.first, it->second.second);
        }
        auto it = args_.find(n.name);
        if (it == args_.end()) err(n, "unknown identifier '" + n.name + "'");
        check_want(n, it->second.second, want);
        return A.arg(it->second.first, it->second.second);
      }
      case Ast::Kind::Un: {
        if (n.op == "!") {
          check_want(n, 1, want);
          return to_bool_not(d, *n.a);
        }
        const unsigned w = pick(n, natural(*n.a), want);
        ExprId a = lower(d, *n.a, w);
        return A.un(n.op == "~" ? ExprOp::Not : ExprOp::Neg, a);
      }
      case Ast::Kind::Bin:
        return lower_bin(d, n, want);
      case Ast::Kind::Tern: {
        ExprId c = lower_bool(d, *n.a);
        const unsigned w = pick(n, natural(n), want);
        return A.mux(c, lower(d, *n.b, w), lower(d, *n.c, w));
      }
      case Ast::Kind::Zext: {
        check_want(n, n.p0, want);
        const unsigned aw = natural(*n.a);
        if (!aw) err(n, "zext operand needs an explicit width");
        return A.zext(lower(d, *n.a, aw), n.p0);
      }
      case Ast::Kind::Slice: {
        check_want(n, n.p1, want);
        const unsigned aw = natural(*n.a);
        if (!aw) err(n, "slice operand needs an explicit width");
        return A.slice(lower(d, *n.a, aw), n.p0, n.p1);
      }
      case Ast::Kind::Concat: {
        check_want(n, natural(n), want);
        return A.bin(ExprOp::Concat, lower(d, *n.a, natural(*n.a)),
                     lower(d, *n.b, natural(*n.b)));
      }
      case Ast::Kind::Red: {
        check_want(n, 1, want);
        const unsigned aw = natural(*n.a);
        if (!aw) err(n, "reduction operand needs an explicit width");
        return A.un(n.op == "redor" ? ExprOp::RedOr : ExprOp::RedAnd,
                    lower(d, *n.a, aw));
      }
    }
    err(n, "internal: unknown AST node");
  }

  ExprId lower_bin(ObjectDesc& d, const Ast& n, unsigned want) {
    auto& A = d.arena();
    static const std::unordered_map<std::string, ExprOp> cmp = {
        {"==", ExprOp::Eq}, {"!=", ExprOp::Ne}, {"<", ExprOp::Lt},
        {"<=", ExprOp::Le}, {">", ExprOp::Gt},  {">=", ExprOp::Ge}};
    static const std::unordered_map<std::string, ExprOp> arith = {
        {"+", ExprOp::Add}, {"-", ExprOp::Sub}, {"*", ExprOp::Mul},
        {"&", ExprOp::And}, {"|", ExprOp::Or},  {"^", ExprOp::Xor}};

    if (n.op == "&&" || n.op == "||") {
      check_want(n, 1, want);
      ExprId a = lower_bool(d, *n.a);
      ExprId b = lower_bool(d, *n.b);
      return A.bin(n.op == "&&" ? ExprOp::And : ExprOp::Or, a, b);
    }
    if (auto it = cmp.find(n.op); it != cmp.end()) {
      check_want(n, 1, want);
      unsigned w = natural(*n.a);
      if (!w) w = natural(*n.b);
      if (!w) err(n, "cannot infer comparison width");
      return A.bin(it->second, lower(d, *n.a, w), lower(d, *n.b, w));
    }
    if (n.op == "<<" || n.op == ">>") {
      const unsigned w = pick(n, natural(*n.a), want);
      unsigned wb = natural(*n.b);
      if (!wb) wb = 7;  // enough for any shift of <=64 bits
      return A.bin(n.op == "<<" ? ExprOp::Shl : ExprOp::Shr,
                   lower(d, *n.a, w), lower(d, *n.b, wb));
    }
    auto it = arith.find(n.op);
    if (it == arith.end()) err(n, "unknown operator '" + n.op + "'");
    const unsigned w = pick(n, natural(n), want);
    return A.bin(it->second, lower(d, *n.a, w), lower(d, *n.b, w));
  }

  /// Lower an expression used as a Boolean (guards, &&/||, ternary cond,
  /// !): width-1 directly, wider values through an OR-reduction.
  ExprId lower_bool(ObjectDesc& d, const Ast& n) {
    unsigned w = natural(n);
    if (w == 0) w = 1;
    ExprId e = lower(d, n, w);
    if (w == 1) return e;
    return d.arena().un(ExprOp::RedOr, e);
  }

  /// Logical not: !e == (e == 0) for wide e, plain Not for 1-bit.
  ExprId to_bool_not(ObjectDesc& d, const Ast& a) {
    unsigned w = natural(a);
    if (w == 0) w = 1;
    ExprId e = lower(d, a, w);
    if (w == 1) return d.arena().un(ExprOp::Not, e);
    return d.arena().bin(ExprOp::Eq, e, d.arena().cst(0, w));
  }

  unsigned pick(const Ast& n, unsigned nat, unsigned want) {
    if (nat && want && nat != want) {
      err(n, "expression width " + std::to_string(nat) +
                 " does not match context width " + std::to_string(want) +
                 "; use zext/slice");
    }
    const unsigned w = nat ? nat : want;
    if (!w) err(n, "cannot infer width");
    return w;
  }

  void check_want(const Ast& n, unsigned have, unsigned want) {
    if (want && have != want) {
      err(n, "expression width " + std::to_string(have) +
                 " does not match context width " + std::to_string(want) +
                 "; use zext/slice");
    }
  }

  [[noreturn]] void err(const Ast& n, const std::string& msg) {
    throw ParseError("parse error at " + std::to_string(n.line) + ":" +
                     std::to_string(n.col) + ": " + msg);
  }

  // --- token helpers ------------------------------------------------------
  AstPtr node(Ast::Kind k) {
    auto n = std::make_unique<Ast>();
    n->kind = k;
    n->line = lex_.peek().line;
    n->col = lex_.peek().col;
    return n;
  }
  bool at_punct(const std::string& p) const {
    return lex_.peek().kind == Tok::Punct && lex_.peek().text == p;
  }
  bool at_ident(const std::string& id) const {
    return lex_.peek().kind == Tok::Ident && lex_.peek().text == id;
  }
  void expect_punct(const std::string& p) {
    if (!at_punct(p)) lex_.error("expected '" + p + "'", lex_.peek());
    lex_.take();
  }
  void expect_ident(const std::string& id) {
    if (!at_ident(id)) lex_.error("expected '" + id + "'", lex_.peek());
    lex_.take();
  }
  std::string take_ident(const std::string& what) {
    const Token t = lex_.take();
    if (t.kind != Tok::Ident) lex_.error("expected " + what, t);
    return t.text;
  }
  unsigned take_width(const std::string& what) {
    const Token t = lex_.take();
    if (t.kind != Tok::Number) {
      lex_.error("expected a bit width (1..64) for " + what, t);
    }
    if (t.value < 1 || t.value > 64) {
      // Name the offender and the actual limit: widths are bounded by
      // the 64-bit words every engine (and the bit-plane rows of the
      // batch engine) stores values in.
      lex_.error(what + " is " + std::to_string(t.value) +
                     " bits wide; widths are limited to 1..64 bits (values "
                     "are stored in 64-bit words, one bit-plane row per "
                     "bit)",
                 t);
    }
    return static_cast<unsigned>(t.value);
  }
  unsigned take_number(const std::string& what) {
    const Token t = lex_.take();
    if (t.kind != Tok::Number) lex_.error("expected " + what, t);
    return static_cast<unsigned>(t.value);
  }

  Lexer lex_;
  std::unordered_map<std::string, std::pair<std::uint32_t, unsigned>> vars_;
  std::unordered_map<std::string, std::pair<std::uint32_t, unsigned>> args_;
};

}  // namespace

ObjectDesc parse_object(const std::string& source) {
  Parser p(source);
  return p.parse();
}

std::vector<ObjectDesc> parse_objects(const std::string& source) {
  Parser p(source);
  return p.parse_all();
}

}  // namespace hlcs::synth
