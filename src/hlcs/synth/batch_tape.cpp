#include "hlcs/synth/batch_tape.hpp"

#include <bit>

#include "hlcs/sim/assert.hpp"
#include "hlcs/sim/sweep.hpp"

namespace hlcs::synth {

namespace {

/// Ops that run directly on bit-planes: bitwise/mux/slice/reduction ops
/// are independent per result bit, and Add/Sub/Neg and the ordered
/// comparisons carry across bits in a *fixed* pattern, so a ripple
/// carry/borrow over the planes evaluates all 64 lanes exactly.  Only
/// Mul and the data-dependent shifts -- where the cross-bit structure
/// itself depends on lane values -- take the per-lane scalar fallback.
bool plane_friendly(TapeOp op) {
  switch (op) {
    case TapeOp::Mul:
    case TapeOp::Shl:
    case TapeOp::Shr:
      return false;
    default:
      return true;
  }
}

/// Masks in the tape are contiguous low-bit runs, so popcount is the
/// width the mask encodes.
unsigned mask_width(std::uint64_t mask) {
  return static_cast<unsigned>(std::popcount(mask));
}

}  // namespace

BatchTape::BatchTape(const Netlist& nl) : tape_(TapeProgram::compile(nl)) {
  const auto& nets = nl.nets();
  plane_off_.reserve(nets.size() + 1);
  width_.reserve(nets.size());
  std::uint32_t off = 0;
  for (const Net& n : nets) {
    if (n.width == 0 || n.width > kLanes) {
      fail("batch engine: net '" + n.name + "' is " +
           std::to_string(n.width) +
           " bits; bit-plane lanes support widths 1..64");
    }
    plane_off_.push_back(off);
    width_.push_back(n.width);
    off += n.width;
  }
  plane_off_.push_back(off);

  const auto& code = tape_.code();
  parallel_.reserve(tape_.combs().size());
  for (const TapeComb& c : tape_.combs()) {
    bool ok = true;
    for (std::uint32_t i = c.begin; i < c.end && ok; ++i) {
      ok = plane_friendly(code[i].op);
    }
    parallel_.push_back(ok ? 1 : 0);
    if (!ok) ++scalar_combs_;
  }

  entries_.resize(tape_.max_stack());
  stack_planes_.resize(std::size_t{tape_.max_stack()} * kLanes);
  slot_planes_.resize(std::size_t{tape_.max_slots()} * kLanes);
  slot_w_.resize(tape_.max_slots());
  scalar_nets_.resize(nets.size());
  scalar_stack_.resize(tape_.max_stack());
  scalar_slots_.resize(tape_.max_slots());
}

void BatchTape::run_all(std::uint64_t* planes, BatchStats& stats) {
  const auto& combs = tape_.combs();
  std::uint64_t parallel = 0, insns = 0;
  for (std::size_t ci = 0; ci < combs.size(); ++ci) {
    if (parallel_[ci]) {
      ++parallel;
      insns += combs[ci].end - combs[ci].begin;
      run_planes(combs[ci], planes);
    } else {
      run_lanes(ci, planes);
    }
  }
  stats.combs_evaluated += combs.size();
  stats.combs_bit_parallel += parallel;
  stats.plane_instructions += insns;
  const std::uint64_t scalar = combs.size() - parallel;
  stats.combs_scalar += scalar;
  stats.scalar_lane_evals += scalar * kLanes;
}

void BatchTape::run(std::size_t ci, std::uint64_t* planes, BatchStats& stats) {
  ++stats.combs_evaluated;
  if (parallel_[ci]) {
    const TapeComb& c = tape_.combs()[ci];
    ++stats.combs_bit_parallel;
    stats.plane_instructions += c.end - c.begin;
    run_planes(c, planes);
  } else {
    ++stats.combs_scalar;
    stats.scalar_lane_evals += kLanes;
    run_lanes(ci, planes);
  }
}

void BatchTape::run_planes(const TapeComb& c, std::uint64_t* planes) {
  const TapeInsn* ip = tape_.code().data() + c.begin;
  const TapeInsn* end = tape_.code().data() + c.end;
  Entry* st = entries_.data();
  std::size_t n = 0;
  // Each stack depth owns a fixed 64-plane region, so a result written
  // at depth d never aliases an operand at another depth; only strict
  // in-place updates (entry d already owning region d) need iteration-
  // order care, noted per op below.
  const auto region = [this](std::size_t d) {
    return stack_planes_.data() + d * kLanes;
  };
  const auto pl = [](const Entry& e, unsigned b) {
    return b < e.w ? e.p[b] : 0;
  };
  for (; ip != end; ++ip) {
    switch (ip->op) {
      case TapeOp::PushConst: {
        std::uint64_t* r = region(n);
        const unsigned w =
            static_cast<unsigned>(std::bit_width(ip->imm));
        for (unsigned b = 0; b < w; ++b) {
          r[b] = (ip->imm >> b) & 1 ? ~std::uint64_t{0} : 0;
        }
        st[n++] = Entry{r, w};
        break;
      }
      case TapeOp::PushNet:
        st[n++] = Entry{planes + plane_off_[ip->aux], width_[ip->aux]};
        break;
      case TapeOp::PushSlot:
        st[n++] = Entry{slot_planes_.data() + std::size_t{ip->aux} * kLanes,
                        slot_w_[ip->aux]};
        break;
      case TapeOp::StoreSlot: {
        const Entry e = st[--n];
        std::uint64_t* s = slot_planes_.data() + std::size_t{ip->aux} * kLanes;
        for (unsigned b = 0; b < e.w; ++b) s[b] = e.p[b];
        slot_w_[ip->aux] = e.w;
        break;
      }
      case TapeOp::Not: {
        Entry& e = st[n - 1];
        std::uint64_t* r = region(n - 1);
        const unsigned w = mask_width(ip->imm);
        for (unsigned b = 0; b < w; ++b) r[b] = ~pl(e, b);  // same-index: safe
        e = Entry{r, w};
        break;
      }
      case TapeOp::RedOr: {
        Entry& e = st[n - 1];
        std::uint64_t acc = 0;
        for (unsigned b = 0; b < e.w; ++b) acc |= e.p[b];
        std::uint64_t* r = region(n - 1);
        r[0] = acc;
        e = Entry{r, 1};
        break;
      }
      case TapeOp::RedAnd: {
        Entry& e = st[n - 1];
        const unsigned w = mask_width(ip->imm);  // operand width
        std::uint64_t acc = ~std::uint64_t{0};
        for (unsigned b = 0; b < w; ++b) acc &= pl(e, b);
        std::uint64_t* r = region(n - 1);
        r[0] = acc;
        e = Entry{r, 1};
        break;
      }
      case TapeOp::Slice: {
        Entry& e = st[n - 1];
        std::uint64_t* r = region(n - 1);
        const unsigned w = mask_width(ip->imm);
        // Reads run ahead of writes (b + lsb >= b), so ascending order
        // is in-place safe.
        for (unsigned b = 0; b < w; ++b) r[b] = pl(e, b + ip->aux);
        e = Entry{r, w};
        break;
      }
      case TapeOp::And: {
        const Entry rhs = st[--n];
        Entry& e = st[n - 1];
        const unsigned w = e.w < rhs.w ? e.w : rhs.w;
        std::uint64_t* r = region(n - 1);
        for (unsigned b = 0; b < w; ++b) r[b] = e.p[b] & rhs.p[b];
        e = Entry{r, w};
        break;
      }
      case TapeOp::Or:
      case TapeOp::Xor: {
        const Entry rhs = st[--n];
        Entry& e = st[n - 1];
        const unsigned w = e.w > rhs.w ? e.w : rhs.w;
        std::uint64_t* r = region(n - 1);
        if (ip->op == TapeOp::Or) {
          for (unsigned b = 0; b < w; ++b) r[b] = pl(e, b) | pl(rhs, b);
        } else {
          for (unsigned b = 0; b < w; ++b) r[b] = pl(e, b) ^ pl(rhs, b);
        }
        e = Entry{r, w};
        break;
      }
      case TapeOp::Eq:
      case TapeOp::Ne: {
        const Entry rhs = st[--n];
        Entry& e = st[n - 1];
        const unsigned w = e.w > rhs.w ? e.w : rhs.w;
        std::uint64_t acc = ~std::uint64_t{0};
        for (unsigned b = 0; b < w; ++b) acc &= ~(pl(e, b) ^ pl(rhs, b));
        std::uint64_t* r = region(n - 1);
        r[0] = ip->op == TapeOp::Eq ? acc : ~acc;
        e = Entry{r, 1};
        break;
      }
      case TapeOp::Concat: {
        const Entry rhs = st[--n];
        Entry& e = st[n - 1];
        const unsigned lo = ip->aux;
        unsigned w = e.w + lo;
        if (w > kLanes) w = kLanes;
        std::uint64_t* r = region(n - 1);
        // High (lhs) part first, descending: write index b reads index
        // b - lo < b, which a descending sweep has not clobbered yet,
        // so the lhs may live in-place at this region.
        for (unsigned b = w; b-- > lo;) r[b] = pl(e, b - lo);
        const unsigned rw = lo < w ? lo : w;
        for (unsigned b = 0; b < rw; ++b) r[b] = pl(rhs, b);
        e = Entry{r, w};
        break;
      }
      case TapeOp::Add:
      case TapeOp::Sub: {
        // Ripple carry over the planes: one 64-lane full adder per bit.
        // Sub is lhs + ~rhs + 1; planes of rhs beyond its width read as
        // zero and invert to one, which is exactly the two's-complement
        // extension (lhs - rhs) mod 2^w needs.
        const Entry rhs = st[--n];
        Entry& e = st[n - 1];
        const unsigned w = mask_width(ip->imm);
        std::uint64_t* r = region(n - 1);
        const bool sub = ip->op == TapeOp::Sub;
        std::uint64_t carry = sub ? ~std::uint64_t{0} : 0;
        for (unsigned b = 0; b < w; ++b) {
          const std::uint64_t a = pl(e, b);  // same-index: safe in place
          const std::uint64_t q = sub ? ~pl(rhs, b) : pl(rhs, b);
          const std::uint64_t x = a ^ q;
          r[b] = x ^ carry;
          carry = (a & q) | (carry & x);
        }
        e = Entry{r, w};
        break;
      }
      case TapeOp::Neg: {
        // 0 + ~x + 1: the full-adder chain collapses to carry &= ~x.
        Entry& e = st[n - 1];
        const unsigned w = mask_width(ip->imm);
        std::uint64_t* r = region(n - 1);
        std::uint64_t carry = ~std::uint64_t{0};
        for (unsigned b = 0; b < w; ++b) {
          const std::uint64_t q = ~pl(e, b);
          r[b] = q ^ carry;
          carry &= q;
        }
        e = Entry{r, w};
        break;
      }
      case TapeOp::Lt:
      case TapeOp::Le:
      case TapeOp::Gt:
      case TapeOp::Ge: {
        // Borrow chain only: the carry out of a + ~b + 1 over the full
        // operand width is 1 exactly when a >= b (per lane).  Gt/Le
        // swap the operands, Lt/Gt invert the carry.
        const Entry rhs = st[--n];
        Entry& e = st[n - 1];
        const unsigned w = e.w > rhs.w ? e.w : rhs.w;
        const bool swap = ip->op == TapeOp::Gt || ip->op == TapeOp::Le;
        std::uint64_t carry = ~std::uint64_t{0};
        for (unsigned b = 0; b < w; ++b) {
          const std::uint64_t a = swap ? pl(rhs, b) : pl(e, b);
          const std::uint64_t q = ~(swap ? pl(e, b) : pl(rhs, b));
          carry = (a & q) | (carry & (a ^ q));
        }
        std::uint64_t* r = region(n - 1);
        r[0] = ip->op == TapeOp::Ge || ip->op == TapeOp::Le ? carry : ~carry;
        e = Entry{r, 1};
        break;
      }
      case TapeOp::Mux: {
        const Entry els = st[--n];
        const Entry thn = st[--n];
        Entry& sel = st[n - 1];
        std::uint64_t s = 0;  // per-lane truthiness of the selector
        for (unsigned b = 0; b < sel.w; ++b) s |= sel.p[b];
        const unsigned w = thn.w > els.w ? thn.w : els.w;
        std::uint64_t* r = region(n - 1);
        for (unsigned b = 0; b < w; ++b) {
          r[b] = (s & pl(thn, b)) | (~s & pl(els, b));
        }
        sel = Entry{r, w};
        break;
      }
      default:
        fail("batch engine: arithmetic op in a bit-parallel comb");
    }
  }
  const Entry res = st[n - 1];
  std::uint64_t* t = planes + plane_off_[c.target];
  const unsigned wt = width_[c.target];
  for (unsigned b = 0; b < wt; ++b) t[b] = pl(res, b);
}

void BatchTape::run_lanes(std::size_t ci, std::uint64_t* planes) {
  const TapeComb& c = tape_.combs()[ci];
  const TapeInsn* ipb = tape_.code().data() + c.begin;
  const TapeInsn* ipe = tape_.code().data() + c.end;
  const NetId* sb = tape_.sources_begin(static_cast<std::uint32_t>(ci));
  const NetId* se = tape_.sources_end(static_cast<std::uint32_t>(ci));
  const unsigned wt = width_[c.target];
  std::uint64_t res[kLanes] = {};
  for (unsigned lane = 0; lane < kLanes; ++lane) {
    // Gather this lane's source values out of the planes, run the
    // ordinary scalar tape, scatter the result bits back.
    for (const NetId* s = sb; s != se; ++s) {
      const std::uint64_t* sp = planes + plane_off_[*s];
      std::uint64_t v = 0;
      for (unsigned b = 0; b < width_[*s]; ++b) {
        v |= ((sp[b] >> lane) & 1) << b;
      }
      scalar_nets_[*s] = v;
    }
    const std::uint64_t v = tape_exec(ipb, ipe, scalar_nets_.data(),
                                      scalar_stack_.data(),
                                      scalar_slots_.data());
    for (unsigned b = 0; b < wt; ++b) {
      res[b] |= ((v >> b) & 1) << lane;
    }
  }
  std::uint64_t* t = planes + plane_off_[c.target];
  for (unsigned b = 0; b < wt; ++b) t[b] = res[b];
}

BatchNetlistSim::BatchNetlistSim(const Netlist& nl)
    : nl_(nl), bt_(nl), planes_(bt_.total_planes(), 0) {
  latch_off_.reserve(nl.regs().size() + 1);
  std::uint32_t off = 0;
  for (const RegDesc& r : nl.regs()) {
    latch_off_.push_back(off);
    off += nl.nets()[r.q].width;
  }
  latch_off_.push_back(off);
  latch_.resize(off);
  reset_state();
}

void BatchNetlistSim::reset_state() {
  for (const RegDesc& r : nl_.regs()) {
    set_input_broadcast(r.q, r.init);
  }
  settle();
}

void BatchNetlistSim::set_input(NetId n, std::size_t lane, std::uint64_t v) {
  std::uint64_t* p = planes_.data() + bt_.plane_off(n);
  const unsigned w = nl_.nets()[n].width;
  const std::uint64_t bit = std::uint64_t{1} << lane;
  for (unsigned b = 0; b < w; ++b) {
    // Branchless merge: copy value-bit b into plane bit `lane`.
    p[b] ^= (p[b] ^ (std::uint64_t{0} - ((v >> b) & 1))) & bit;
  }
}

void BatchNetlistSim::set_input_broadcast(NetId n, std::uint64_t v) {
  std::uint64_t* p = planes_.data() + bt_.plane_off(n);
  const unsigned w = nl_.nets()[n].width;
  for (unsigned b = 0; b < w; ++b) {
    p[b] = (v >> b) & 1 ? ~std::uint64_t{0} : 0;
  }
}

std::uint64_t BatchNetlistSim::get(NetId n, std::size_t lane) const {
  const std::uint64_t* p = planes_.data() + bt_.plane_off(n);
  const unsigned w = nl_.nets()[n].width;
  std::uint64_t v = 0;
  for (unsigned b = 0; b < w; ++b) v |= ((p[b] >> lane) & 1) << b;
  return v;
}

void BatchNetlistSim::settle() {
  ++stats_.settles;
  bt_.run_all(planes_.data(), stats_);
}

void BatchNetlistSim::clock_edge() {
  settle();
  ++stats_.edges;
  const auto& regs = nl_.regs();
  // Two passes so every D is sampled before any Q updates, exactly like
  // the scalar engine's simultaneous latch.
  for (std::size_t i = 0; i < regs.size(); ++i) {
    const std::uint64_t* d = planes_.data() + bt_.plane_off(regs[i].d);
    std::uint64_t* l = latch_.data() + latch_off_[i];
    const unsigned w = nl_.nets()[regs[i].q].width;
    for (unsigned b = 0; b < w; ++b) l[b] = d[b];
  }
  for (std::size_t i = 0; i < regs.size(); ++i) {
    const std::uint64_t* l = latch_.data() + latch_off_[i];
    std::uint64_t* q = planes_.data() + bt_.plane_off(regs[i].q);
    const unsigned w = nl_.nets()[regs[i].q].width;
    for (unsigned b = 0; b < w; ++b) q[b] = l[b];
  }
  settle();
}

void BatchRunner::run(std::size_t lanes, unsigned threads, const BlockFn& fn) {
  const std::size_t blocks = block_count(lanes);
  sim::parallel_for_indexed(blocks, threads, [&](std::size_t block) {
    const std::size_t lane0 = block * BatchTape::kLanes;
    const std::size_t in_block =
        lanes - lane0 < BatchTape::kLanes ? lanes - lane0 : BatchTape::kLanes;
    fn(block, lane0, in_block);
  });
}

}  // namespace hlcs::synth
