#include "hlcs/synth/batch_tape.hpp"

#include <algorithm>
#include <bit>

#include "hlcs/sim/assert.hpp"
#include "hlcs/sim/sweep.hpp"

// Direct-threaded dispatch needs the computed-goto extension (GCC and
// Clang both provide it); everything else takes the portable switch.
#if defined(__GNUC__) || defined(__clang__)
#define HLCS_BT_COMPUTED_GOTO 1
#else
#define HLCS_BT_COMPUTED_GOTO 0
#endif

namespace hlcs::synth {

unsigned cpu_superlanes() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  if (__builtin_cpu_supports("avx512f")) return 8;
  if (__builtin_cpu_supports("avx2")) return 4;
#endif
  return 1;
}

namespace {

/// Ops that run directly on bit-planes: bitwise/mux/slice/reduction ops
/// are independent per result bit, and Add/Sub/Neg and the ordered
/// comparisons carry across bits in a *fixed* pattern, so a ripple
/// carry/borrow over the planes evaluates all lanes exactly.  Only Mul
/// and the data-dependent shifts -- where the cross-bit structure itself
/// depends on lane values -- take the per-lane scalar fallback.
bool plane_friendly(TapeOp op) {
  switch (op) {
    case TapeOp::Mul:
    case TapeOp::Shl:
    case TapeOp::Shr:
      return false;
    default:
      return true;
  }
}

/// Masks in the tape are contiguous low-bit runs, so popcount is the
/// width the mask encodes.
unsigned mask_width(std::uint64_t mask) {
  return static_cast<unsigned>(std::popcount(mask));
}

/// 1:1 lowering for tape ops the fusion pass leaves alone.
BOp plain_bop(TapeOp op) {
  switch (op) {
    case TapeOp::PushConst: return BOp::PushConst;
    case TapeOp::PushNet: return BOp::PushNet;
    case TapeOp::PushSlot: return BOp::PushSlot;
    case TapeOp::StoreSlot: return BOp::StoreSlot;
    case TapeOp::Not: return BOp::Not;
    case TapeOp::Neg: return BOp::Neg;
    case TapeOp::RedOr: return BOp::RedOr;
    case TapeOp::RedAnd: return BOp::RedAnd;
    case TapeOp::Slice: return BOp::Slice;
    case TapeOp::Add: return BOp::Add;
    case TapeOp::Sub: return BOp::Sub;
    case TapeOp::And: return BOp::And;
    case TapeOp::Or: return BOp::Or;
    case TapeOp::Xor: return BOp::Xor;
    case TapeOp::Eq: return BOp::Eq;
    case TapeOp::Ne: return BOp::Ne;
    case TapeOp::Lt: return BOp::Lt;
    case TapeOp::Le: return BOp::Le;
    case TapeOp::Gt: return BOp::Gt;
    case TapeOp::Ge: return BOp::Ge;
    case TapeOp::Concat: return BOp::Concat;
    case TapeOp::Mux: return BOp::Mux;
    default:
      fail("batch engine: arithmetic op in a bit-parallel comb");
  }
}

/// Rows at index >= width read as all-zero (values are stored masked);
/// this shared row is the target of those reads at any K <= kMaxSuper.
constexpr std::uint64_t kZeroRow[BatchTape::kMaxSuper] = {};

}  // namespace

BatchTape::BatchTape(const Netlist& nl, unsigned super)
    : tape_(TapeProgram::compile(nl)),
      super_(super == 0 ? cpu_superlanes() : super) {
  if (super_ != 1 && super_ != 4 && super_ != 8) {
    fail("batch engine: superlane factor must be 1, 4 or 8 (got " +
         std::to_string(super_) + ")");
  }
  const auto& nets = nl.nets();
  plane_off_.reserve(nets.size() + 1);
  width_.reserve(nets.size());
  std::uint32_t off = 0;
  for (const Net& n : nets) {
    if (n.width == 0 || n.width > kLanes) {
      fail("batch engine: net '" + n.name + "' is " +
           std::to_string(n.width) +
           " bits wide; bit-plane rows support nets of 1..64 bits (one "
           "plane per bit)");
    }
    plane_off_.push_back(off);
    width_.push_back(n.width);
    off += n.width;
  }
  plane_off_.push_back(off);

  // Classify each comb and compile the parallel ones through the
  // superinstruction fusion pass into the batch stream.
  const auto& code = tape_.code();
  bcombs_.reserve(tape_.combs().size());
  for (const TapeComb& c : tape_.combs()) {
    bool ok = true;
    for (std::uint32_t i = c.begin; i < c.end && ok; ++i) {
      ok = plane_friendly(code[i].op);
    }
    BComb bc;
    bc.parallel = ok;
    if (ok) {
      bc.begin = static_cast<std::uint32_t>(bcode_.size());
      fuse_comb(code.data() + c.begin, code.data() + c.end, bc);
      bc.end = static_cast<std::uint32_t>(bcode_.size());
      plane_insns_per_settle_ += bc.end - bc.begin;
      fused_per_settle_ += bc.fused;
    } else {
      ++scalar_combs_;
      scalar_insns_per_lane_ += c.end - c.begin;
    }
    bcombs_.push_back(bc);
  }
  fused_total_ = fused_per_settle_;

  entries_.resize(tape_.max_stack());
  stack_planes_.resize(std::size_t{tape_.max_stack()} * kLanes * super_);
  slot_planes_.resize(std::size_t{tape_.max_slots()} * kLanes * super_);
  slot_w_.resize(tape_.max_slots());
  scalar_nets_.resize(nets.size());
  scalar_stack_.resize(tape_.max_stack());
  scalar_slots_.resize(tape_.max_slots());
  scalar_res_.resize(kLanes * super_);
}

// The peephole pass, longest match first.  Every pattern is positional
// -- the fused operand is whatever the deleted instruction would have
// left on top of the stack -- so matching adjacency in the postorder
// tape is sufficient for correctness:
//   PushNet, Not, And  -> AndNotNet   (priority/grant chains)
//   PushNet, {And,Or,Xor} -> {And,Or,Xor}Net
//   PushNet, Mux       -> MuxNet      (else operand straight from a net)
//   PushNet, Not       -> NotNet
//   {Eq,Ne}, Mux       -> {Eq,Ne}Mux  (compare feeding a select)
//   Not, And           -> AndNot
//   Mux, StoreSlot     -> MuxStore    (select written into a CSE slot)
void BatchTape::fuse_comb(const TapeInsn* ip, const TapeInsn* end, BComb& bc) {
  const auto emit = [&](BOp op, std::uint32_t aux, std::uint64_t imm,
                        std::size_t eaten) {
    bcode_.push_back(BatchInsn{op, aux, imm});
    ++fusion_hits_[static_cast<std::size_t>(op)];
    ++bc.fused;
    ip += eaten;
  };
  while (ip != end) {
    const std::size_t left = static_cast<std::size_t>(end - ip);
    if (ip->op == TapeOp::PushNet) {
      if (left >= 3 && ip[1].op == TapeOp::Not && ip[2].op == TapeOp::And) {
        emit(BOp::AndNotNet, ip->aux, ip[1].imm, 3);
        continue;
      }
      if (left >= 2) {
        bool hit = true;
        switch (ip[1].op) {
          case TapeOp::And: emit(BOp::AndNet, ip->aux, 0, 2); break;
          case TapeOp::Or: emit(BOp::OrNet, ip->aux, 0, 2); break;
          case TapeOp::Xor: emit(BOp::XorNet, ip->aux, 0, 2); break;
          case TapeOp::Mux: emit(BOp::MuxNet, ip->aux, 0, 2); break;
          case TapeOp::Not: emit(BOp::NotNet, ip->aux, ip[1].imm, 2); break;
          default: hit = false; break;
        }
        if (hit) continue;
      }
    } else if ((ip->op == TapeOp::Eq || ip->op == TapeOp::Ne) && left >= 2 &&
               ip[1].op == TapeOp::Mux) {
      emit(ip->op == TapeOp::Eq ? BOp::EqMux : BOp::NeMux, 0, 0, 2);
      continue;
    } else if (ip->op == TapeOp::Not && left >= 2 &&
               ip[1].op == TapeOp::And) {
      emit(BOp::AndNot, 0, ip->imm, 2);
      continue;
    } else if (ip->op == TapeOp::Mux && left >= 2 &&
               ip[1].op == TapeOp::StoreSlot) {
      emit(BOp::MuxStore, ip[1].aux, 0, 2);
      continue;
    }
    bcode_.push_back(BatchInsn{plain_bop(ip->op), ip->aux, ip->imm});
    ++ip;
  }
}

std::vector<std::pair<std::string, std::uint64_t>> BatchTape::fusion_hits()
    const {
  static const char* const kNames[] = {
      "and_net", "or_net",  "xor_net", "not_net", "and_not_net",
      "and_not", "mux_net", "eq_mux",  "ne_mux",  "mux_store"};
  static_assert(std::size(kNames) == kNumBOps - kFirstFusedBOp);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(std::size(kNames));
  for (std::size_t i = kFirstFusedBOp; i < kNumBOps; ++i) {
    out.emplace_back(kNames[i - kFirstFusedBOp], fusion_hits_[i]);
  }
  return out;
}

void BatchTape::run_all(std::uint64_t* planes, BatchStats& stats) {
  switch (super_) {
    case 4: run_combs<4>(planes); break;
    case 8: run_combs<8>(planes); break;
    default: run_combs<1>(planes); break;
  }
  // run_all always evaluates every comb, so the per-settle increments
  // are constants of the tape -- no hot-loop counters needed.
  const std::uint64_t ncombs = tape_.combs().size();
  stats.combs_evaluated += ncombs;
  stats.combs_bit_parallel += ncombs - scalar_combs_;
  stats.combs_scalar += scalar_combs_;
  stats.scalar_lane_evals += scalar_combs_ * lanes();
  stats.plane_instructions += plane_insns_per_settle_;
  stats.fused_ops += fused_per_settle_;
  stats.scalar_ops += scalar_insns_per_lane_ * lanes();
}

void BatchTape::run_comb(std::size_t ci, std::uint64_t* planes) {
  if (!bcombs_[ci].parallel) {
    run_lanes(ci, planes);
    return;
  }
  const NetId target = tape_.combs()[ci].target;
  switch (super_) {
    case 4: run_planes<4>(bcombs_[ci], target, planes); break;
    case 8: run_planes<8>(bcombs_[ci], target, planes); break;
    default: run_planes<1>(bcombs_[ci], target, planes); break;
  }
}

template <unsigned K>
void BatchTape::run_combs(std::uint64_t* planes) {
  const auto& combs = tape_.combs();
  for (std::size_t ci = 0; ci < combs.size(); ++ci) {
    if (bcombs_[ci].parallel) {
      run_planes<K>(bcombs_[ci], combs[ci].target, planes);
    } else {
      run_lanes(ci, planes);
    }
  }
}

// The evaluator.  Every value is `w` rows of K words each; each stack
// depth owns a fixed 64-row region, so a result written at depth d never
// aliases an operand at another depth and only strict in-place updates
// (entry d already owning region d) need iteration-order care, noted per
// op.  The inner `j < K` loops carry K as a compile-time constant: at
// K=4/8 they are exactly one AVX2/AVX-512 vector op per row when the
// build enables those ISAs, and short unrolled scalar code otherwise.
template <unsigned K>
void BatchTape::run_planes(const BComb& bc, NetId target,
                           std::uint64_t* planes) {
  const BatchInsn* ip = bcode_.data() + bc.begin;
  const BatchInsn* const end = bcode_.data() + bc.end;
  Entry* st = entries_.data();
  std::size_t n = 0;
  std::uint64_t* const stack0 = stack_planes_.data();
  std::uint64_t* const slots0 = slot_planes_.data();
  const auto region = [stack0](std::size_t d) -> std::uint64_t* {
    return stack0 + d * (kLanes * K);
  };
  const auto row = [](const Entry& e, unsigned b) -> const std::uint64_t* {
    return b < e.w ? e.p + std::size_t{b} * K : kZeroRow;
  };
  const auto net_entry = [this, planes](std::uint32_t net) -> Entry {
    return Entry{planes + std::size_t{plane_off_[net]} * K, width_[net]};
  };
  // Ordered comparisons share one borrow chain: the carry out of
  // x + ~y + 1 over the full width is 1 exactly when x >= y per lane.
  const auto cmp = [&](const Entry& x, const Entry& y, bool invert,
                       std::size_t depth) -> Entry {
    const unsigned w = x.w > y.w ? x.w : y.w;
    std::uint64_t carry[K];
    for (unsigned j = 0; j < K; ++j) carry[j] = ~std::uint64_t{0};
    for (unsigned b = 0; b < w; ++b) {
      const std::uint64_t* a = row(x, b);
      const std::uint64_t* q = row(y, b);
      for (unsigned j = 0; j < K; ++j) {
        const std::uint64_t av = a[j];
        const std::uint64_t qv = ~q[j];
        carry[j] = (av & qv) | (carry[j] & (av ^ qv));
      }
    }
    std::uint64_t* r = region(depth);
    for (unsigned j = 0; j < K; ++j) r[j] = invert ? ~carry[j] : carry[j];
    return Entry{r, 1};
  };

#if HLCS_BT_COMPUTED_GOTO
  // Direct threading: one indirect branch per handler tail instead of a
  // single shared switch branch, so the predictor learns opcode *pairs*.
  static const void* const kJump[kNumBOps] = {
      &&l_PushConst, &&l_PushNet, &&l_PushSlot, &&l_StoreSlot,
      &&l_Not,       &&l_Neg,     &&l_RedOr,    &&l_RedAnd,
      &&l_Slice,     &&l_Add,     &&l_Sub,      &&l_And,
      &&l_Or,        &&l_Xor,     &&l_Eq,       &&l_Ne,
      &&l_Lt,        &&l_Le,      &&l_Gt,       &&l_Ge,
      &&l_Concat,    &&l_Mux,     &&l_AndNet,   &&l_OrNet,
      &&l_XorNet,    &&l_NotNet,  &&l_AndNotNet, &&l_AndNot,
      &&l_MuxNet,    &&l_EqMux,   &&l_NeMux,    &&l_MuxStore};
#define HLCS_BT_OP(name) l_##name:
#define HLCS_BT_NEXT()                                   \
  do {                                                   \
    if (++ip == end) goto l_done;                        \
    goto* kJump[static_cast<std::size_t>(ip->op)];       \
  } while (0)
  if (ip == end) goto l_done;
  goto* kJump[static_cast<std::size_t>(ip->op)];
#else
#define HLCS_BT_OP(name) case BOp::name:
#define HLCS_BT_NEXT() break
  for (; ip != end; ++ip) {
    switch (ip->op) {
#endif

  HLCS_BT_OP(PushConst) {
    std::uint64_t* r = region(n);
    const unsigned w = static_cast<unsigned>(std::bit_width(ip->imm));
    for (unsigned b = 0; b < w; ++b) {
      const std::uint64_t v = (ip->imm >> b) & 1 ? ~std::uint64_t{0} : 0;
      for (unsigned j = 0; j < K; ++j) r[b * K + j] = v;
    }
    st[n++] = Entry{r, w};
  }
  HLCS_BT_NEXT();

  HLCS_BT_OP(PushNet) {
    st[n++] = net_entry(ip->aux);
  }
  HLCS_BT_NEXT();

  HLCS_BT_OP(PushSlot) {
    st[n++] = Entry{slots0 + std::size_t{ip->aux} * (kLanes * K),
                    slot_w_[ip->aux]};
  }
  HLCS_BT_NEXT();

  HLCS_BT_OP(StoreSlot) {
    const Entry e = st[--n];
    std::uint64_t* s = slots0 + std::size_t{ip->aux} * (kLanes * K);
    for (unsigned b = 0; b < e.w; ++b) {
      for (unsigned j = 0; j < K; ++j) s[b * K + j] = e.p[b * K + j];
    }
    slot_w_[ip->aux] = e.w;
  }
  HLCS_BT_NEXT();

  HLCS_BT_OP(Not) {
    Entry& e = st[n - 1];
    std::uint64_t* r = region(n - 1);
    const unsigned w = mask_width(ip->imm);
    for (unsigned b = 0; b < w; ++b) {
      const std::uint64_t* a = row(e, b);  // same-index: in-place safe
      for (unsigned j = 0; j < K; ++j) r[b * K + j] = ~a[j];
    }
    e = Entry{r, w};
  }
  HLCS_BT_NEXT();

  HLCS_BT_OP(Neg) {
    // 0 + ~x + 1: the full-adder chain collapses to carry &= ~x.
    Entry& e = st[n - 1];
    const unsigned w = mask_width(ip->imm);
    std::uint64_t* r = region(n - 1);
    std::uint64_t carry[K];
    for (unsigned j = 0; j < K; ++j) carry[j] = ~std::uint64_t{0};
    for (unsigned b = 0; b < w; ++b) {
      const std::uint64_t* a = row(e, b);
      for (unsigned j = 0; j < K; ++j) {
        const std::uint64_t q = ~a[j];
        r[b * K + j] = q ^ carry[j];
        carry[j] &= q;
      }
    }
    e = Entry{r, w};
  }
  HLCS_BT_NEXT();

  HLCS_BT_OP(RedOr) {
    Entry& e = st[n - 1];
    std::uint64_t acc[K] = {};
    for (unsigned b = 0; b < e.w; ++b) {
      for (unsigned j = 0; j < K; ++j) acc[j] |= e.p[b * K + j];
    }
    std::uint64_t* r = region(n - 1);
    for (unsigned j = 0; j < K; ++j) r[j] = acc[j];
    e = Entry{r, 1};
  }
  HLCS_BT_NEXT();

  HLCS_BT_OP(RedAnd) {
    Entry& e = st[n - 1];
    const unsigned w = mask_width(ip->imm);  // operand width
    std::uint64_t acc[K];
    for (unsigned j = 0; j < K; ++j) acc[j] = ~std::uint64_t{0};
    for (unsigned b = 0; b < w; ++b) {
      const std::uint64_t* a = row(e, b);
      for (unsigned j = 0; j < K; ++j) acc[j] &= a[j];
    }
    std::uint64_t* r = region(n - 1);
    for (unsigned j = 0; j < K; ++j) r[j] = acc[j];
    e = Entry{r, 1};
  }
  HLCS_BT_NEXT();

  HLCS_BT_OP(Slice) {
    Entry& e = st[n - 1];
    std::uint64_t* r = region(n - 1);
    const unsigned w = mask_width(ip->imm);
    // Reads run ahead of writes (b + lsb >= b): ascending is in-place
    // safe.
    for (unsigned b = 0; b < w; ++b) {
      const std::uint64_t* a = row(e, b + ip->aux);
      for (unsigned j = 0; j < K; ++j) r[b * K + j] = a[j];
    }
    e = Entry{r, w};
  }
  HLCS_BT_NEXT();

  HLCS_BT_OP(Add) {
    // Ripple carry over rows: one K*64-lane full adder per bit.
    const Entry rhs = st[--n];
    Entry& e = st[n - 1];
    const unsigned w = mask_width(ip->imm);
    std::uint64_t* r = region(n - 1);
    std::uint64_t carry[K] = {};
    for (unsigned b = 0; b < w; ++b) {
      const std::uint64_t* a = row(e, b);  // same-index: in-place safe
      const std::uint64_t* q = row(rhs, b);
      for (unsigned j = 0; j < K; ++j) {
        const std::uint64_t av = a[j];
        const std::uint64_t qv = q[j];
        const std::uint64_t x = av ^ qv;
        r[b * K + j] = x ^ carry[j];
        carry[j] = (av & qv) | (carry[j] & x);
      }
    }
    e = Entry{r, w};
  }
  HLCS_BT_NEXT();

  HLCS_BT_OP(Sub) {
    // lhs + ~rhs + 1; rhs rows beyond its width read as zero and invert
    // to one -- exactly the two's-complement extension (mod 2^w) needs.
    const Entry rhs = st[--n];
    Entry& e = st[n - 1];
    const unsigned w = mask_width(ip->imm);
    std::uint64_t* r = region(n - 1);
    std::uint64_t carry[K];
    for (unsigned j = 0; j < K; ++j) carry[j] = ~std::uint64_t{0};
    for (unsigned b = 0; b < w; ++b) {
      const std::uint64_t* a = row(e, b);
      const std::uint64_t* q = row(rhs, b);
      for (unsigned j = 0; j < K; ++j) {
        const std::uint64_t av = a[j];
        const std::uint64_t qv = ~q[j];
        const std::uint64_t x = av ^ qv;
        r[b * K + j] = x ^ carry[j];
        carry[j] = (av & qv) | (carry[j] & x);
      }
    }
    e = Entry{r, w};
  }
  HLCS_BT_NEXT();

  HLCS_BT_OP(And) {
    const Entry rhs = st[--n];
    Entry& e = st[n - 1];
    const unsigned w = e.w < rhs.w ? e.w : rhs.w;
    std::uint64_t* r = region(n - 1);
    for (unsigned b = 0; b < w; ++b) {
      for (unsigned j = 0; j < K; ++j) {
        r[b * K + j] = e.p[b * K + j] & rhs.p[b * K + j];
      }
    }
    e = Entry{r, w};
  }
  HLCS_BT_NEXT();

  HLCS_BT_OP(Or) {
    const Entry rhs = st[--n];
    Entry& e = st[n - 1];
    const unsigned w = e.w > rhs.w ? e.w : rhs.w;
    std::uint64_t* r = region(n - 1);
    for (unsigned b = 0; b < w; ++b) {
      const std::uint64_t* a = row(e, b);
      const std::uint64_t* q = row(rhs, b);
      for (unsigned j = 0; j < K; ++j) r[b * K + j] = a[j] | q[j];
    }
    e = Entry{r, w};
  }
  HLCS_BT_NEXT();

  HLCS_BT_OP(Xor) {
    const Entry rhs = st[--n];
    Entry& e = st[n - 1];
    const unsigned w = e.w > rhs.w ? e.w : rhs.w;
    std::uint64_t* r = region(n - 1);
    for (unsigned b = 0; b < w; ++b) {
      const std::uint64_t* a = row(e, b);
      const std::uint64_t* q = row(rhs, b);
      for (unsigned j = 0; j < K; ++j) r[b * K + j] = a[j] ^ q[j];
    }
    e = Entry{r, w};
  }
  HLCS_BT_NEXT();

  HLCS_BT_OP(Eq) {
    const Entry rhs = st[--n];
    Entry& e = st[n - 1];
    const unsigned w = e.w > rhs.w ? e.w : rhs.w;
    std::uint64_t acc[K];
    for (unsigned j = 0; j < K; ++j) acc[j] = ~std::uint64_t{0};
    for (unsigned b = 0; b < w; ++b) {
      const std::uint64_t* a = row(e, b);
      const std::uint64_t* q = row(rhs, b);
      for (unsigned j = 0; j < K; ++j) acc[j] &= ~(a[j] ^ q[j]);
    }
    std::uint64_t* r = region(n - 1);
    for (unsigned j = 0; j < K; ++j) r[j] = acc[j];
    e = Entry{r, 1};
  }
  HLCS_BT_NEXT();

  HLCS_BT_OP(Ne) {
    const Entry rhs = st[--n];
    Entry& e = st[n - 1];
    const unsigned w = e.w > rhs.w ? e.w : rhs.w;
    std::uint64_t acc[K];
    for (unsigned j = 0; j < K; ++j) acc[j] = ~std::uint64_t{0};
    for (unsigned b = 0; b < w; ++b) {
      const std::uint64_t* a = row(e, b);
      const std::uint64_t* q = row(rhs, b);
      for (unsigned j = 0; j < K; ++j) acc[j] &= ~(a[j] ^ q[j]);
    }
    std::uint64_t* r = region(n - 1);
    for (unsigned j = 0; j < K; ++j) r[j] = ~acc[j];
    e = Entry{r, 1};
  }
  HLCS_BT_NEXT();

  HLCS_BT_OP(Lt) {
    const Entry rhs = st[--n];
    Entry& e = st[n - 1];
    e = cmp(e, rhs, /*invert=*/true, n - 1);
  }
  HLCS_BT_NEXT();

  HLCS_BT_OP(Le) {
    const Entry rhs = st[--n];
    Entry& e = st[n - 1];
    e = cmp(rhs, e, /*invert=*/false, n - 1);
  }
  HLCS_BT_NEXT();

  HLCS_BT_OP(Gt) {
    const Entry rhs = st[--n];
    Entry& e = st[n - 1];
    e = cmp(rhs, e, /*invert=*/true, n - 1);
  }
  HLCS_BT_NEXT();

  HLCS_BT_OP(Ge) {
    const Entry rhs = st[--n];
    Entry& e = st[n - 1];
    e = cmp(e, rhs, /*invert=*/false, n - 1);
  }
  HLCS_BT_NEXT();

  HLCS_BT_OP(Concat) {
    const Entry rhs = st[--n];
    Entry& e = st[n - 1];
    const unsigned lo = ip->aux;
    unsigned w = e.w + lo;
    if (w > kLanes) w = static_cast<unsigned>(kLanes);
    std::uint64_t* r = region(n - 1);
    // High (lhs) part first, descending: write row b reads row b - lo
    // < b, which a descending sweep has not clobbered yet, so the lhs
    // may live in-place at this region.
    for (unsigned b = w; b-- > lo;) {
      const std::uint64_t* a = row(e, b - lo);
      for (unsigned j = 0; j < K; ++j) r[b * K + j] = a[j];
    }
    const unsigned rw = lo < w ? lo : w;
    for (unsigned b = 0; b < rw; ++b) {
      const std::uint64_t* q = row(rhs, b);
      for (unsigned j = 0; j < K; ++j) r[b * K + j] = q[j];
    }
    e = Entry{r, w};
  }
  HLCS_BT_NEXT();

  HLCS_BT_OP(Mux) {
    const Entry els = st[--n];
    const Entry thn = st[--n];
    Entry& sel = st[n - 1];
    std::uint64_t s[K] = {};  // per-lane truthiness of the selector
    for (unsigned b = 0; b < sel.w; ++b) {
      for (unsigned j = 0; j < K; ++j) s[j] |= sel.p[b * K + j];
    }
    const unsigned w = thn.w > els.w ? thn.w : els.w;
    std::uint64_t* r = region(n - 1);
    for (unsigned b = 0; b < w; ++b) {
      const std::uint64_t* t = row(thn, b);
      const std::uint64_t* z = row(els, b);
      for (unsigned j = 0; j < K; ++j) {
        r[b * K + j] = (s[j] & t[j]) | (~s[j] & z[j]);
      }
    }
    sel = Entry{r, w};
  }
  HLCS_BT_NEXT();

  // ----- fused superinstructions ------------------------------------

  HLCS_BT_OP(AndNet) {
    const Entry rhs = net_entry(ip->aux);
    Entry& e = st[n - 1];
    const unsigned w = e.w < rhs.w ? e.w : rhs.w;
    std::uint64_t* r = region(n - 1);
    for (unsigned b = 0; b < w; ++b) {
      for (unsigned j = 0; j < K; ++j) {
        r[b * K + j] = e.p[b * K + j] & rhs.p[b * K + j];
      }
    }
    e = Entry{r, w};
  }
  HLCS_BT_NEXT();

  HLCS_BT_OP(OrNet) {
    const Entry rhs = net_entry(ip->aux);
    Entry& e = st[n - 1];
    const unsigned w = e.w > rhs.w ? e.w : rhs.w;
    std::uint64_t* r = region(n - 1);
    for (unsigned b = 0; b < w; ++b) {
      const std::uint64_t* a = row(e, b);
      const std::uint64_t* q = row(rhs, b);
      for (unsigned j = 0; j < K; ++j) r[b * K + j] = a[j] | q[j];
    }
    e = Entry{r, w};
  }
  HLCS_BT_NEXT();

  HLCS_BT_OP(XorNet) {
    const Entry rhs = net_entry(ip->aux);
    Entry& e = st[n - 1];
    const unsigned w = e.w > rhs.w ? e.w : rhs.w;
    std::uint64_t* r = region(n - 1);
    for (unsigned b = 0; b < w; ++b) {
      const std::uint64_t* a = row(e, b);
      const std::uint64_t* q = row(rhs, b);
      for (unsigned j = 0; j < K; ++j) r[b * K + j] = a[j] ^ q[j];
    }
    e = Entry{r, w};
  }
  HLCS_BT_NEXT();

  HLCS_BT_OP(NotNet) {
    const Entry src = net_entry(ip->aux);
    std::uint64_t* r = region(n);
    const unsigned w = mask_width(ip->imm);
    for (unsigned b = 0; b < w; ++b) {
      const std::uint64_t* a = row(src, b);
      for (unsigned j = 0; j < K; ++j) r[b * K + j] = ~a[j];
    }
    st[n++] = Entry{r, w};
  }
  HLCS_BT_NEXT();

  HLCS_BT_OP(AndNotNet) {
    // tos &= ~net, masked to the Not's width: the grant/priority chain
    // shape, three dispatches collapsed into one.
    const Entry rhs = net_entry(ip->aux);
    Entry& e = st[n - 1];
    const unsigned wn = mask_width(ip->imm);
    const unsigned w = e.w < wn ? e.w : wn;
    std::uint64_t* r = region(n - 1);
    for (unsigned b = 0; b < w; ++b) {
      const std::uint64_t* q = row(rhs, b);
      for (unsigned j = 0; j < K; ++j) {
        r[b * K + j] = e.p[b * K + j] & ~q[j];
      }
    }
    e = Entry{r, w};
  }
  HLCS_BT_NEXT();

  HLCS_BT_OP(AndNot) {
    const Entry rhs = st[--n];
    Entry& e = st[n - 1];
    const unsigned wn = mask_width(ip->imm);
    const unsigned w = e.w < wn ? e.w : wn;
    std::uint64_t* r = region(n - 1);
    for (unsigned b = 0; b < w; ++b) {
      const std::uint64_t* q = row(rhs, b);
      for (unsigned j = 0; j < K; ++j) {
        r[b * K + j] = e.p[b * K + j] & ~q[j];
      }
    }
    e = Entry{r, w};
  }
  HLCS_BT_NEXT();

  HLCS_BT_OP(MuxNet) {
    const Entry els = net_entry(ip->aux);
    const Entry thn = st[--n];
    Entry& sel = st[n - 1];
    std::uint64_t s[K] = {};
    for (unsigned b = 0; b < sel.w; ++b) {
      for (unsigned j = 0; j < K; ++j) s[j] |= sel.p[b * K + j];
    }
    const unsigned w = thn.w > els.w ? thn.w : els.w;
    std::uint64_t* r = region(n - 1);
    for (unsigned b = 0; b < w; ++b) {
      const std::uint64_t* t = row(thn, b);
      const std::uint64_t* z = row(els, b);
      for (unsigned j = 0; j < K; ++j) {
        r[b * K + j] = (s[j] & t[j]) | (~s[j] & z[j]);
      }
    }
    sel = Entry{r, w};
  }
  HLCS_BT_NEXT();

  HLCS_BT_OP(EqMux) {
    // The else operand is an Eq whose operands are still on the stack:
    // pop them, fold the compare into the select.  The compare result is
    // accumulated locally before any row of the result is written, so
    // operands may alias the result region.
    const Entry cb = st[--n];
    const Entry ca = st[--n];
    const unsigned cw = ca.w > cb.w ? ca.w : cb.w;
    std::uint64_t eqv[K];
    for (unsigned j = 0; j < K; ++j) eqv[j] = ~std::uint64_t{0};
    for (unsigned b = 0; b < cw; ++b) {
      const std::uint64_t* a = row(ca, b);
      const std::uint64_t* q = row(cb, b);
      for (unsigned j = 0; j < K; ++j) eqv[j] &= ~(a[j] ^ q[j]);
    }
    const Entry thn = st[--n];
    Entry& sel = st[n - 1];
    std::uint64_t s[K] = {};
    for (unsigned b = 0; b < sel.w; ++b) {
      for (unsigned j = 0; j < K; ++j) s[j] |= sel.p[b * K + j];
    }
    // The else (the compare) is 1 wide, so the mux result is
    // max(thn.w, 1) -- thn.w alone would be 0 for a PushConst 0 then.
    const unsigned w = thn.w > 1 ? thn.w : 1;
    std::uint64_t* r = region(n - 1);
    for (unsigned b = 0; b < w; ++b) {
      const std::uint64_t* t = row(thn, b);
      for (unsigned j = 0; j < K; ++j) {
        const std::uint64_t z = b == 0 ? eqv[j] : 0;
        r[b * K + j] = (s[j] & t[j]) | (~s[j] & z);
      }
    }
    sel = Entry{r, w};
  }
  HLCS_BT_NEXT();

  HLCS_BT_OP(NeMux) {
    const Entry cb = st[--n];
    const Entry ca = st[--n];
    const unsigned cw = ca.w > cb.w ? ca.w : cb.w;
    std::uint64_t eqv[K];
    for (unsigned j = 0; j < K; ++j) eqv[j] = ~std::uint64_t{0};
    for (unsigned b = 0; b < cw; ++b) {
      const std::uint64_t* a = row(ca, b);
      const std::uint64_t* q = row(cb, b);
      for (unsigned j = 0; j < K; ++j) eqv[j] &= ~(a[j] ^ q[j]);
    }
    for (unsigned j = 0; j < K; ++j) eqv[j] = ~eqv[j];
    const Entry thn = st[--n];
    Entry& sel = st[n - 1];
    std::uint64_t s[K] = {};
    for (unsigned b = 0; b < sel.w; ++b) {
      for (unsigned j = 0; j < K; ++j) s[j] |= sel.p[b * K + j];
    }
    const unsigned w = thn.w > 1 ? thn.w : 1;
    std::uint64_t* r = region(n - 1);
    for (unsigned b = 0; b < w; ++b) {
      const std::uint64_t* t = row(thn, b);
      for (unsigned j = 0; j < K; ++j) {
        const std::uint64_t z = b == 0 ? eqv[j] : 0;
        r[b * K + j] = (s[j] & t[j]) | (~s[j] & z);
      }
    }
    sel = Entry{r, w};
  }
  HLCS_BT_NEXT();

  HLCS_BT_OP(MuxStore) {
    // Mux + StoreSlot: the select lands straight in the CSE slot.  Each
    // output row's value is computed before it is stored, so operands
    // borrowed from this very slot (PushSlot) stay safe row by row.
    const Entry els = st[--n];
    const Entry thn = st[--n];
    const Entry sel = st[--n];
    std::uint64_t s[K] = {};
    for (unsigned b = 0; b < sel.w; ++b) {
      for (unsigned j = 0; j < K; ++j) s[j] |= sel.p[b * K + j];
    }
    const unsigned w = thn.w > els.w ? thn.w : els.w;
    std::uint64_t* sp = slots0 + std::size_t{ip->aux} * (kLanes * K);
    for (unsigned b = 0; b < w; ++b) {
      const std::uint64_t* t = row(thn, b);
      const std::uint64_t* z = row(els, b);
      for (unsigned j = 0; j < K; ++j) {
        sp[b * K + j] = (s[j] & t[j]) | (~s[j] & z[j]);
      }
    }
    slot_w_[ip->aux] = w;
  }
  HLCS_BT_NEXT();

#if HLCS_BT_COMPUTED_GOTO
l_done:;
#else
      case BOp::kCount:
        fail("batch engine: corrupt batch opcode");
    }
  }
#endif
#undef HLCS_BT_OP
#undef HLCS_BT_NEXT

  const Entry res = st[n - 1];
  std::uint64_t* t = planes + std::size_t{plane_off_[target]} * K;
  const unsigned wt = width_[target];
  for (unsigned b = 0; b < wt; ++b) {
    const std::uint64_t* a = row(res, b);
    for (unsigned j = 0; j < K; ++j) t[b * K + j] = a[j];
  }
}

void BatchTape::run_lanes(std::size_t ci, std::uint64_t* planes) {
  const TapeComb& c = tape_.combs()[ci];
  const TapeInsn* ipb = tape_.code().data() + c.begin;
  const TapeInsn* ipe = tape_.code().data() + c.end;
  const NetId* sb = tape_.sources_begin(static_cast<std::uint32_t>(ci));
  const NetId* se = tape_.sources_end(static_cast<std::uint32_t>(ci));
  const unsigned wt = width_[c.target];
  const unsigned K = super_;
  std::uint64_t* res = scalar_res_.data();
  std::fill(res, res + std::size_t{wt} * K, 0);
  const std::size_t all = lanes();
  for (std::size_t lane = 0; lane < all; ++lane) {
    const std::size_t word = lane >> 6;
    const unsigned bit = static_cast<unsigned>(lane & 63);
    // Gather this lane's source values out of the planes, run the
    // ordinary scalar tape, scatter the result bits back.
    for (const NetId* s = sb; s != se; ++s) {
      const std::uint64_t* sp = planes + std::size_t{plane_off_[*s]} * K;
      std::uint64_t v = 0;
      for (unsigned b = 0; b < width_[*s]; ++b) {
        v |= ((sp[b * K + word] >> bit) & 1) << b;
      }
      scalar_nets_[*s] = v;
    }
    const std::uint64_t v = tape_exec(ipb, ipe, scalar_nets_.data(),
                                      scalar_stack_.data(),
                                      scalar_slots_.data());
    for (unsigned b = 0; b < wt; ++b) {
      res[b * K + word] |= ((v >> b) & 1) << bit;
    }
  }
  std::uint64_t* t = planes + std::size_t{plane_off_[c.target]} * K;
  for (std::size_t i = 0; i < std::size_t{wt} * K; ++i) t[i] = res[i];
}

BatchNetlistSim::BatchNetlistSim(const Netlist& nl, unsigned super, bool jit)
    : nl_(nl),
      bt_(nl, super),
      planes_(std::size_t{bt_.total_planes()} * bt_.super(), 0) {
  if (jit && BatchJit::host_supported()) {
    jit_ = std::make_unique<BatchJit>(bt_);
    // Nothing compilable (or no executable pages): fall back wholesale.
    if (!jit_->available()) jit_.reset();
  }
  latch_off_.reserve(nl.regs().size() + 1);
  std::uint32_t off = 0;
  for (const RegDesc& r : nl.regs()) {
    latch_off_.push_back(off);
    off += nl.nets()[r.q].width;
  }
  latch_off_.push_back(off);
  latch_.resize(std::size_t{off} * bt_.super());
  reset_state();
}

void BatchNetlistSim::reset_state() {
  for (const RegDesc& r : nl_.regs()) {
    set_input_broadcast(r.q, r.init);
  }
  settle();
}

void BatchNetlistSim::set_input(NetId n, std::size_t lane, std::uint64_t v) {
  const unsigned K = bt_.super();
  std::uint64_t* p = planes_.data() + std::size_t{bt_.plane_off(n)} * K;
  const unsigned w = nl_.nets()[n].width;
  const std::size_t word = lane >> 6;
  const std::uint64_t bit = std::uint64_t{1} << (lane & 63);
  for (unsigned b = 0; b < w; ++b) {
    // Branchless merge: copy value-bit b into this lane's plane bit.
    std::uint64_t& pw = p[std::size_t{b} * K + word];
    pw ^= (pw ^ (std::uint64_t{0} - ((v >> b) & 1))) & bit;
  }
}

void BatchNetlistSim::set_input_broadcast(NetId n, std::uint64_t v) {
  const unsigned K = bt_.super();
  std::uint64_t* p = planes_.data() + std::size_t{bt_.plane_off(n)} * K;
  const unsigned w = nl_.nets()[n].width;
  for (unsigned b = 0; b < w; ++b) {
    const std::uint64_t row = (v >> b) & 1 ? ~std::uint64_t{0} : 0;
    for (unsigned j = 0; j < K; ++j) p[std::size_t{b} * K + j] = row;
  }
}

std::uint64_t BatchNetlistSim::get(NetId n, std::size_t lane) const {
  const unsigned K = bt_.super();
  const std::uint64_t* p = planes_.data() + std::size_t{bt_.plane_off(n)} * K;
  const unsigned w = nl_.nets()[n].width;
  const std::size_t word = lane >> 6;
  const unsigned bit = static_cast<unsigned>(lane & 63);
  std::uint64_t v = 0;
  for (unsigned b = 0; b < w; ++b) {
    v |= ((p[std::size_t{b} * K + word] >> bit) & 1) << b;
  }
  return v;
}

void BatchNetlistSim::settle() {
  ++stats_.settles;
  if (jit_) {
    jit_->run_all(planes_.data(), stats_);
  } else {
    bt_.run_all(planes_.data(), stats_);
  }
}

void BatchNetlistSim::clock_edge() {
  settle();
  ++stats_.edges;
  const unsigned K = bt_.super();
  const auto& regs = nl_.regs();
  // Two passes so every D is sampled before any Q updates, exactly like
  // the scalar engine's simultaneous latch.
  for (std::size_t i = 0; i < regs.size(); ++i) {
    const std::uint64_t* d =
        planes_.data() + std::size_t{bt_.plane_off(regs[i].d)} * K;
    std::uint64_t* l = latch_.data() + std::size_t{latch_off_[i]} * K;
    const std::size_t words = std::size_t{nl_.nets()[regs[i].q].width} * K;
    for (std::size_t b = 0; b < words; ++b) l[b] = d[b];
  }
  for (std::size_t i = 0; i < regs.size(); ++i) {
    const std::uint64_t* l = latch_.data() + std::size_t{latch_off_[i]} * K;
    std::uint64_t* q =
        planes_.data() + std::size_t{bt_.plane_off(regs[i].q)} * K;
    const std::size_t words = std::size_t{nl_.nets()[regs[i].q].width} * K;
    for (std::size_t b = 0; b < words; ++b) q[b] = l[b];
  }
  settle();
}

// Deterministic sharding: the partition depends only on (lanes, super).
// Full super-wide blocks first; the tail runs at the smallest superlane
// that covers the remaining lanes, so small populations (e.g. the
// classic 64-lane check at super=8) never pay for idle plane words.
std::vector<BatchRunner::Block> BatchRunner::partition(std::size_t lanes,
                                                       unsigned super) {
  if (super == 0) super = cpu_superlanes();
  if (super != 1 && super != 4 && super != 8) {
    fail("batch engine: superlane factor must be 1, 4 or 8 (got " +
         std::to_string(super) + ")");
  }
  std::vector<Block> blocks;
  std::size_t lane0 = 0;
  while (lane0 < lanes) {
    const std::size_t rem = lanes - lane0;
    unsigned k = 1;
    if (super >= 4 && rem > std::size_t{k} * BatchTape::kLanes) k = 4;
    if (super >= 8 && rem > std::size_t{k} * BatchTape::kLanes) k = 8;
    const std::size_t width = std::size_t{k} * BatchTape::kLanes;
    blocks.push_back(Block{lane0, rem < width ? rem : width, k});
    lane0 += width;
  }
  return blocks;
}

void BatchRunner::run(std::size_t lanes, unsigned threads, unsigned super,
                      const BlockFn& fn) {
  const std::vector<Block> blocks = partition(lanes, super);
  sim::parallel_for_indexed(blocks.size(), threads,
                            [&](std::size_t i) { fn(i, blocks[i]); });
}

}  // namespace hlcs::synth
