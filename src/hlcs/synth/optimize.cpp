#include "hlcs/synth/optimize.hpp"

#include <functional>
#include <optional>
#include <unordered_map>

namespace hlcs::synth {

namespace {

/// Structural identity of a node, for hash-consing.
struct NodeKey {
  ExprOp op;
  unsigned width;
  std::uint64_t imm;
  ExprId a, b, c;

  friend bool operator==(const NodeKey&, const NodeKey&) = default;
};

struct NodeKeyHash {
  std::size_t operator()(const NodeKey& k) const {
    std::uint64_t h = static_cast<std::uint64_t>(k.op) * 0x9E3779B97F4A7C15ull;
    h ^= (h >> 29) + k.width;
    h = (h ^ k.imm) * 0xBF58476D1CE4E5B9ull;
    h ^= (std::uint64_t{k.a} << 32) ^ (std::uint64_t{k.b} << 16) ^ k.c;
    return static_cast<std::size_t>(h * 0x94D049BB133111EBull);
  }
};

std::optional<std::uint64_t> const_of(const ExprArena& a, ExprId id) {
  const ExprNode& n = a.at(id);
  if (n.op == ExprOp::Const) return n.imm;
  return std::nullopt;
}

/// Structural equality (trees are small after simplification; bounded by
/// node count anyway).
bool struct_eq(const ExprArena& a, ExprId x, ExprId y) {
  if (x == y) return true;
  const ExprNode& nx = a.at(x);
  const ExprNode& ny = a.at(y);
  if (nx.op != ny.op || nx.width != ny.width || nx.imm != ny.imm) {
    return false;
  }
  if ((nx.a == kNoExpr) != (ny.a == kNoExpr)) return false;
  if ((nx.b == kNoExpr) != (ny.b == kNoExpr)) return false;
  if ((nx.c == kNoExpr) != (ny.c == kNoExpr)) return false;
  if (nx.a != kNoExpr && !struct_eq(a, nx.a, ny.a)) return false;
  if (nx.b != kNoExpr && !struct_eq(a, nx.b, ny.b)) return false;
  if (nx.c != kNoExpr && !struct_eq(a, nx.c, ny.c)) return false;
  return true;
}

std::size_t count_nodes(const ExprArena& a, ExprId id) {
  const ExprNode& n = a.at(id);
  std::size_t c = 1;
  if (n.a != kNoExpr) c += count_nodes(a, n.a);
  if (n.b != kNoExpr) c += count_nodes(a, n.b);
  if (n.c != kNoExpr) c += count_nodes(a, n.c);
  return c;
}

struct Simplifier {
  Simplifier(const ExprArena& s, ExprArena& d) : src(s), dst(d) {}

  const ExprArena& src;
  ExprArena& dst;
  std::size_t folds = 0;
  std::size_t cse_hits = 0;
  /// src node -> rewritten dst node (rewrite shared subtrees once).
  std::unordered_map<ExprId, ExprId> memo;
  /// Hash-consing table over dst: structurally identical nodes collapse
  /// to one id, so downstream struct_eq is (mostly) id equality and the
  /// tape compiler sees a reduced DAG.
  std::unordered_map<NodeKey, ExprId, NodeKeyHash> interned;

  /// Intern a freshly built (or folded-to-existing) dst node.
  ExprId intern(ExprId id) {
    const ExprNode& n = dst.at(id);
    auto [it, inserted] =
        interned.emplace(NodeKey{n.op, n.width, n.imm, n.a, n.b, n.c}, id);
    if (!inserted && it->second != id) {
      // The equivalent node already exists; the duplicate we just built
      // stays in the arena unreferenced (append-only), which is harmless.
      ++cse_hits;
      return it->second;
    }
    return it->second;
  }

  ExprId cst(std::uint64_t v, unsigned w) { return intern(dst.cst(v, w)); }

  ExprId run(ExprId id) {
    auto it = memo.find(id);
    if (it != memo.end()) return it->second;
    const ExprId out = rewrite(id);
    memo.emplace(id, out);
    return out;
  }

  ExprId rewrite(ExprId id) {
    const ExprNode& n = src.at(id);
    switch (n.op) {
      case ExprOp::Const:
        return cst(n.imm, n.width);
      case ExprOp::Var:
        return intern(dst.var(static_cast<std::uint32_t>(n.imm), n.width));
      case ExprOp::Arg:
        return intern(dst.arg(static_cast<std::uint32_t>(n.imm), n.width));
      case ExprOp::Mux:
        return mux(run(n.a), run(n.b), run(n.c));
      case ExprOp::ZExt:
        return zext(run(n.a), n.width);
      case ExprOp::Slice:
        return slice(run(n.a), static_cast<unsigned>(n.imm), n.width);
      default:
        if (is_unary(n.op)) return un(n.op, run(n.a));
        return bin(n.op, run(n.a), run(n.b));
    }
  }

  ExprId un(ExprOp op, ExprId a) {
    const unsigned aw = dst.at(a).width;
    if (auto ca = const_of(dst, a)) {
      ++folds;
      switch (op) {
        case ExprOp::Not: return cst(~*ca, aw);
        case ExprOp::Neg: return cst(~*ca + 1, aw);
        case ExprOp::RedOr: return cst(*ca != 0, 1);
        case ExprOp::RedAnd: return cst(*ca == ExprArena::mask(aw), 1);
        default: break;
      }
      --folds;
    }
    // not(not(x)) = x
    if (op == ExprOp::Not && dst.at(a).op == ExprOp::Not) {
      ++folds;
      return dst.at(a).a;
    }
    return intern(dst.un(op, a));
  }

  ExprId zext(ExprId a, unsigned w) {
    if (dst.at(a).width == w) {
      ++folds;
      return a;
    }
    if (auto ca = const_of(dst, a)) {
      ++folds;
      return cst(*ca, w);
    }
    return intern(dst.zext(a, w));
  }

  ExprId slice(ExprId a, unsigned lsb, unsigned w) {
    if (lsb == 0 && w == dst.at(a).width) {
      ++folds;
      return a;
    }
    if (auto ca = const_of(dst, a)) {
      ++folds;
      return cst(*ca >> lsb, w);
    }
    return intern(dst.slice(a, lsb, w));
  }

  ExprId mux(ExprId s, ExprId t, ExprId f) {
    if (auto cs = const_of(dst, s)) {
      ++folds;
      return *cs ? t : f;
    }
    if (struct_eq(dst, t, f)) {
      ++folds;
      return t;
    }
    return intern(dst.mux(s, t, f));
  }

  ExprId bin(ExprOp op, ExprId a, ExprId b) {
    const unsigned wa = dst.at(a).width;
    auto ca = const_of(dst, a);
    auto cb = const_of(dst, b);
    if (ca && cb) {
      ++folds;
      return fold_bin(op, *ca, *cb, wa, dst.at(b).width);
    }
    const std::uint64_t ones = ExprArena::mask(wa);
    // Identity / annihilator rewrites; try the constant on either side
    // for the commutative cases.
    auto with_const = [&](std::uint64_t c, ExprId other,
                          bool const_is_rhs) -> std::optional<ExprId> {
      switch (op) {
        case ExprOp::And:
          if (c == 0) return cst(0, wa);
          if (c == ones) return other;
          break;
        case ExprOp::Or:
          if (c == 0) return other;
          if (c == ones) return cst(ones, wa);
          break;
        case ExprOp::Xor:
          if (c == 0) return other;
          break;
        case ExprOp::Add:
          if (c == 0) return other;
          break;
        case ExprOp::Sub:
          if (c == 0 && const_is_rhs) return other;  // x - 0
          break;
        case ExprOp::Mul:
          if (c == 0) return cst(0, wa);
          if (c == 1) return other;
          break;
        case ExprOp::Shl:
        case ExprOp::Shr:
          if (c == 0 && const_is_rhs) return other;  // shift by 0
          break;
        default:
          break;
      }
      return std::nullopt;
    };
    if (cb) {
      if (auto r = with_const(*cb, a, /*const_is_rhs=*/true)) {
        ++folds;
        return *r;
      }
    }
    if (ca && op != ExprOp::Sub && op != ExprOp::Shl && op != ExprOp::Shr) {
      if (auto r = with_const(*ca, b, /*const_is_rhs=*/false)) {
        ++folds;
        return *r;
      }
    }
    // x == x, x != x on structurally equal operands.
    if ((op == ExprOp::Eq || op == ExprOp::Ne || op == ExprOp::Xor ||
         op == ExprOp::Sub) &&
        struct_eq(dst, a, b)) {
      ++folds;
      switch (op) {
        case ExprOp::Eq: return cst(1, 1);
        case ExprOp::Ne: return cst(0, 1);
        default: return cst(0, wa);  // x^x, x-x
      }
    }
    return intern(dst.bin(op, a, b));
  }

  ExprId fold_bin(ExprOp op, std::uint64_t a, std::uint64_t b, unsigned wa,
                  unsigned wb) {
    const std::uint64_t m = ExprArena::mask(wa);
    switch (op) {
      case ExprOp::Add: return cst(a + b, wa);
      case ExprOp::Sub: return cst(a - b, wa);
      case ExprOp::Mul: return cst(a * b, wa);
      case ExprOp::And: return cst(a & b, wa);
      case ExprOp::Or: return cst(a | b, wa);
      case ExprOp::Xor: return cst(a ^ b, wa);
      case ExprOp::Eq: return cst(a == b, 1);
      case ExprOp::Ne: return cst(a != b, 1);
      case ExprOp::Lt: return cst(a < b, 1);
      case ExprOp::Le: return cst(a <= b, 1);
      case ExprOp::Gt: return cst(a > b, 1);
      case ExprOp::Ge: return cst(a >= b, 1);
      case ExprOp::Shl: return cst(b >= 64 ? 0 : (a << b) & m, wa);
      case ExprOp::Shr: return cst(b >= 64 ? 0 : a >> b, wa);
      case ExprOp::Concat: return cst((a << wb) | b, wa + wb);
      default: fail("fold_bin: unexpected op");
    }
  }
};

}  // namespace

Netlist optimize(const Netlist& nl, OptimizeStats* stats) {
  Netlist out(nl.name());
  for (const Net& n : nl.nets()) out.add_net(n.name, n.width);
  for (NetId i : nl.inputs()) out.mark_input(i);
  for (NetId o : nl.outputs()) out.mark_output(o);
  for (const RegDesc& r : nl.regs()) out.add_reg(r.q, r.d, r.init);

  OptimizeStats local;
  Simplifier s(nl.arena(), out.arena());
  for (const CombAssign& c : nl.combs()) {
    local.nodes_before += count_nodes(nl.arena(), c.value);
    ExprId v = s.run(c.value);
    // Width must be preserved exactly (folds keep widths by
    // construction, but be explicit about the invariant).
    HLCS_ASSERT(out.arena().at(v).width == nl.arena().at(c.value).width,
                "optimize changed the width of a comb expression");
    out.add_comb(c.target, v);
    local.nodes_after += count_nodes(out.arena(), v);
  }
  local.folds = s.folds;
  local.cse_hits = s.cse_hits;
  out.validate_and_order();
  if (stats) *stats = local;
  return out;
}

}  // namespace hlcs::synth
