// Umbrella header for the communication-synthesis layer.
#pragma once

#include "hlcs/synth/batch_tape.hpp"
#include "hlcs/synth/comm_synth.hpp"
#include "hlcs/synth/equiv.hpp"
#include "hlcs/synth/expr.hpp"
#include "hlcs/synth/golden.hpp"
#include "hlcs/synth/interp.hpp"
#include "hlcs/synth/netlist.hpp"
#include "hlcs/synth/object_desc.hpp"
#include "hlcs/synth/optimize.hpp"
#include "hlcs/synth/parser.hpp"
#include "hlcs/synth/poly.hpp"
#include "hlcs/synth/report.hpp"
#include "hlcs/synth/rtl_sim.hpp"
#include "hlcs/synth/tape.hpp"
#include "hlcs/synth/verilog.hpp"
