#include "hlcs/synth/equiv.hpp"

#include <optional>
#include <sstream>

#include "hlcs/sim/random.hpp"
#include "hlcs/synth/batch_tape.hpp"

namespace hlcs::synth {

namespace {

/// Port NetIds resolved once per netlist; the per-cycle hot loops index
/// these instead of re-resolving names through Netlist::find.
struct Ports {
  NetId rst;
  std::vector<NetId> req, sel, args, grant, ret;
  std::vector<NetId> vars;
};

Ports resolve_ports(const Netlist& nl, const ObjectDesc& desc,
                    const SynthOptions& opt) {
  Ports p;
  p.rst = nl.find("rst");
  p.req.reserve(opt.clients);
  for (std::size_t c = 0; c < opt.clients; ++c) {
    p.req.push_back(nl.find(req_port(c)));
    p.sel.push_back(nl.find(sel_port(c)));
    p.args.push_back(nl.find(args_port(c)));
    p.grant.push_back(nl.find(grant_port(c)));
    p.ret.push_back(nl.find(ret_port(c)));
  }
  p.vars.reserve(desc.vars().size());
  for (std::size_t v = 0; v < desc.vars().size(); ++v) {
    p.vars.push_back(nl.find(var_port(desc, v)));
  }
  return p;
}

/// One lane's stimulus state: an independently seeded RNG plus the
/// client request bookkeeping.  Stimulus depends only on this state and
/// the golden model's grant decisions, never on RTL outputs, so every
/// backend generates the identical stream for a given lane seed.
struct LaneStim {
  sim::Xorshift rng{0};
  std::vector<GoldenCycleModel::ClientIn> in;
  std::vector<unsigned> blocked;

  void init(std::uint64_t seed, std::size_t clients) {
    rng = sim::Xorshift(seed);
    in.assign(clients, {});
    blocked.assign(clients, 0);
  }

  /// Advance one cycle of stimulus; returns whether rst pulses.
  bool advance(const EquivOptions& eopt, std::size_t n_methods) {
    const bool rst =
        eopt.reset_percent > 0 && rng.chance(eopt.reset_percent, 100);
    for (std::size_t c = 0; c < in.size(); ++c) {
      if (!in[c].req) {
        if (rng.chance(eopt.request_percent, 100)) {
          in[c].req = true;
          in[c].sel = rng.below(n_methods);
          in[c].args = rng.next();
          blocked[c] = 0;
        }
      } else if (++blocked[c] > eopt.reroll_after) {
        in[c].sel = rng.below(n_methods);
        in[c].args = rng.next();
        blocked[c] = 0;
      }
    }
    return rst;
  }

  /// Client reaction to the (golden) grant, after the edge.
  void react(const std::optional<std::size_t>& granted, bool rst) {
    if (granted) {
      in[*granted].req = false;
      blocked[*granted] = 0;
    }
    if (rst) {
      for (auto& ci : in) ci.req = false;
    }
  }
};

/// Per-lane verdict, merged across lanes in index order afterwards.
struct LaneOutcome {
  bool equal = true;
  std::size_t grants = 0;
  std::string mismatch;  ///< first divergence, without the lane prefix
};

void note_mismatch(LaneOutcome& out, std::size_t cycle,
                   const std::string& what) {
  if (out.equal) {
    out.equal = false;
    out.mismatch = "cycle " + std::to_string(cycle) + ": " + what;
  }
}

/// Record one golden-model cycle into `vec` (reusing its buffers) and
/// append a copy to `record`.
void record_vector(std::vector<EquivVector>& record, EquivVector& vec,
                   bool rst, const LaneStim& stim,
                   const GoldenCycleModel::StepResult& g,
                   const GoldenCycleModel& golden, const ObjectDesc& desc) {
  vec.rst = rst;
  vec.in.assign(stim.in.begin(), stim.in.end());
  vec.grant.assign(stim.in.size(), false);
  vec.ret.assign(stim.in.size(), 0);
  if (g.granted) {
    vec.grant[*g.granted] = true;
    const MethodDesc& m = desc.methods()[stim.in[*g.granted].sel];
    if (m.ret_width > 0) {
      vec.ret[*g.granted] = g.ret & ExprArena::mask(m.ret_width);
    }
  }
  vec.vars.clear();
  for (std::size_t v = 0; v < desc.vars().size(); ++v) {
    vec.vars.push_back(golden.var(v));
  }
  record.push_back(vec);
}

/// One complete scalar lock-step lane on a (possibly reused) NetlistSim.
/// The caller resets `rtl` between lanes.
LaneOutcome run_scalar_lane(const ObjectDesc& desc, const SynthOptions& opt,
                            const EquivOptions& eopt, const Ports& ports,
                            NetlistSim& rtl, std::size_t lane,
                            std::vector<EquivVector>* record) {
  LaneOutcome out;
  GoldenCycleModel golden(desc, opt);
  LaneStim stim;
  stim.init(sim::lane_seed(eopt.seed, lane), opt.clients);
  // Stimulus/record buffers live outside the cycle loop; each iteration
  // reuses their capacity instead of reallocating.
  EquivVector vec;

  for (std::size_t cycle = 0; cycle < eopt.cycles; ++cycle) {
    // --- stimulus ---------------------------------------------------
    const bool rst = stim.advance(eopt, desc.methods().size());
    for (std::size_t c = 0; c < opt.clients; ++c) {
      rtl.set_input(ports.req[c], stim.in[c].req ? 1 : 0);
      rtl.set_input(ports.sel[c], stim.in[c].sel);
      rtl.set_input(ports.args[c], stim.in[c].args);
    }
    rtl.set_input(ports.rst, rst ? 1 : 0);
    rtl.settle();

    // --- compare combinational grants/returns -----------------------
    std::optional<std::size_t> rtl_grant;
    for (std::size_t c = 0; c < opt.clients; ++c) {
      if (rtl.get(ports.grant[c]) != 0) {
        if (rtl_grant) note_mismatch(out, cycle, "grant not one-hot");
        rtl_grant = c;
      }
    }
    const GoldenCycleModel::StepResult g = golden.step(stim.in, rst);
    if (rtl_grant != g.granted) {
      note_mismatch(out, cycle,
                    "grant differs (rtl=" +
                        (rtl_grant ? std::to_string(*rtl_grant)
                                   : std::string("none")) +
                        " golden=" +
                        (g.granted ? std::to_string(*g.granted)
                                   : std::string("none")) +
                        ")");
    }
    if (g.granted) {
      const MethodDesc& m = desc.methods()[stim.in[*g.granted].sel];
      if (m.ret_width > 0) {
        const std::uint64_t rtl_ret =
            rtl.get(ports.ret[*g.granted]) & ExprArena::mask(m.ret_width);
        if (rtl_ret != (g.ret & ExprArena::mask(m.ret_width))) {
          note_mismatch(out, cycle, "return value differs on method " + m.name);
        }
      }
      out.grants++;
    }

    // --- latch and compare state ------------------------------------
    rtl.clock_edge();
    for (std::size_t v = 0; v < desc.vars().size(); ++v) {
      if (rtl.get(ports.vars[v]) != golden.var(v)) {
        note_mismatch(out, cycle, "state variable '" + desc.vars()[v].name +
                                      "' differs");
      }
    }
    if (record) record_vector(*record, vec, rst, stim, g, golden, desc);

    // --- client reaction ---------------------------------------------
    stim.react(g.granted, rst);
  }
  return out;
}

/// One superlane block of the batch backend: a single BatchNetlistSim
/// carries all the block's lanes' RTL state; per-lane golden models and
/// stimulus run exactly the scalar loop's cycle structure.
void run_batch_block(const ObjectDesc& desc, const SynthOptions& opt,
                     const EquivOptions& eopt, const Netlist& nl,
                     const Ports& ports, const BatchRunner::Block& blk,
                     LaneOutcome* outs, std::vector<EquivVector>* record,
                     BatchStats* stats_out, JitStats* jit_out) {
  const std::size_t lane0 = blk.lane0;
  const std::size_t n = blk.lanes;
  BatchNetlistSim rtl(nl, blk.super, eopt.jit);
  std::vector<GoldenCycleModel> goldens;
  goldens.reserve(n);
  std::vector<LaneStim> stims(n);
  for (std::size_t i = 0; i < n; ++i) {
    goldens.emplace_back(desc, opt);
    stims[i].init(sim::lane_seed(eopt.seed, lane0 + i), opt.clients);
  }
  std::vector<std::uint8_t> rsts(n);
  std::vector<GoldenCycleModel::StepResult> steps(n);
  EquivVector vec;

  for (std::size_t cycle = 0; cycle < eopt.cycles; ++cycle) {
    // --- stimulus, all lanes ----------------------------------------
    for (std::size_t i = 0; i < n; ++i) {
      rsts[i] = stims[i].advance(eopt, desc.methods().size()) ? 1 : 0;
      for (std::size_t c = 0; c < opt.clients; ++c) {
        rtl.set_input(ports.req[c], i, stims[i].in[c].req ? 1 : 0);
        rtl.set_input(ports.sel[c], i, stims[i].in[c].sel);
        rtl.set_input(ports.args[c], i, stims[i].in[c].args);
      }
      rtl.set_input(ports.rst, i, rsts[i]);
    }
    rtl.settle();

    // --- compare combinational grants/returns, per lane -------------
    for (std::size_t i = 0; i < n; ++i) {
      LaneOutcome& out = outs[i];
      std::optional<std::size_t> rtl_grant;
      for (std::size_t c = 0; c < opt.clients; ++c) {
        if (rtl.get(ports.grant[c], i) != 0) {
          if (rtl_grant) note_mismatch(out, cycle, "grant not one-hot");
          rtl_grant = c;
        }
      }
      steps[i] = goldens[i].step(stims[i].in, rsts[i] != 0);
      const GoldenCycleModel::StepResult& g = steps[i];
      if (rtl_grant != g.granted) {
        note_mismatch(out, cycle,
                      "grant differs (rtl=" +
                          (rtl_grant ? std::to_string(*rtl_grant)
                                     : std::string("none")) +
                          " golden=" +
                          (g.granted ? std::to_string(*g.granted)
                                     : std::string("none")) +
                          ")");
      }
      if (g.granted) {
        const MethodDesc& m = desc.methods()[stims[i].in[*g.granted].sel];
        if (m.ret_width > 0) {
          const std::uint64_t rtl_ret = rtl.get(ports.ret[*g.granted], i) &
                                        ExprArena::mask(m.ret_width);
          if (rtl_ret != (g.ret & ExprArena::mask(m.ret_width))) {
            note_mismatch(out, cycle,
                          "return value differs on method " + m.name);
          }
        }
        out.grants++;
      }
    }

    // --- latch and compare state, per lane --------------------------
    rtl.clock_edge();
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t v = 0; v < desc.vars().size(); ++v) {
        if (rtl.get(ports.vars[v], i) != goldens[i].var(v)) {
          note_mismatch(outs[i], cycle,
                        "state variable '" + desc.vars()[v].name +
                            "' differs");
        }
      }
      if (record && i == 0) {
        record_vector(*record, vec, rsts[0] != 0, stims[0], steps[0],
                      goldens[0], desc);
      }
      stims[i].react(steps[i].granted, rsts[i] != 0);
    }
  }
  if (stats_out) *stats_out = rtl.stats();
  if (jit_out && rtl.jit_stats()) *jit_out = *rtl.jit_stats();
}

std::string lane_prefix(std::size_t lane, std::uint64_t seed) {
  std::ostringstream os;
  os << "lane " << lane << " (seed 0x" << std::hex << seed << "): ";
  return os.str();
}

/// Fold per-lane outcomes (in lane order) into the result and, on a
/// mismatch, regenerate the failing lane's diagnostics on the scalar
/// engine.  `batch` marks that the outcomes came from the batch
/// backend, whose verdict the scalar re-run then cross-checks.
void merge_outcomes(EquivResult& result, const std::vector<LaneOutcome>& outs,
                    const ObjectDesc& desc, const SynthOptions& opt,
                    const EquivOptions& eopt, const Netlist& nl,
                    const Ports& ports, bool batch) {
  result.lanes = outs.size();
  result.cycles = eopt.cycles * outs.size();
  for (const LaneOutcome& o : outs) result.grants += o.grants;

  for (std::size_t lane = 0; lane < outs.size(); ++lane) {
    if (outs[lane].equal) continue;
    result.equal = false;
    result.first_bad_lane = lane;
    result.first_bad_seed = sim::lane_seed(eopt.seed, lane);
    result.first_mismatch =
        lane_prefix(lane, result.first_bad_seed) + outs[lane].mismatch;
    // Replay the failing lane alone on the scalar engine so the
    // recorded vectors (and, in batch mode, an independent verdict)
    // describe the counterexample rather than lane 0.
    NetlistSim rtl(nl);
    result.vectors.clear();
    const LaneOutcome replay = run_scalar_lane(desc, opt, eopt, ports, rtl,
                                               lane, &result.vectors);
    if (batch && replay.equal) {
      // The scalar engine disagrees with the batch verdict: a batch
      // engine defect, worth saying so instead of blaming the design.
      result.first_mismatch +=
          " [batch-only: scalar replay of this lane passed]";
    }
    return;
  }
}

}  // namespace

EquivResult check_equivalence(const ObjectDesc& desc, const SynthOptions& opt,
                              const EquivOptions& eopt) {
  const Netlist nl = synthesize(desc, opt);
  const Ports ports = resolve_ports(nl, desc, opt);
  const std::size_t lanes = eopt.lanes == 0 ? 1 : eopt.lanes;

  EquivResult result;
  result.vectors.reserve(eopt.cycles);
  std::vector<LaneOutcome> outs(lanes);

  if (eopt.batch) {
    // Per-block stats land in a block-indexed vector and are summed in
    // block order afterwards, so the totals (like the verdicts) are
    // identical at any thread count.
    const std::size_t nblocks = BatchRunner::block_count(lanes, eopt.superlanes);
    std::vector<BatchStats> stats(nblocks);
    std::vector<JitStats> jstats(nblocks);
    BatchRunner::run(lanes, eopt.threads, eopt.superlanes,
                     [&](std::size_t block, const BatchRunner::Block& blk) {
                       run_batch_block(desc, opt, eopt, nl, ports, blk,
                                       outs.data() + blk.lane0,
                                       block == 0 ? &result.vectors : nullptr,
                                       &stats[block], &jstats[block]);
                     });
    for (const BatchStats& s : stats) result.batch_stats += s;
    for (const JitStats& s : jstats) result.jit_stats += s;
    result.batch_scalar_fraction = result.batch_stats.scalar_fraction();
  } else {
    NetlistSim rtl(nl);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      if (lane > 0) rtl.reset_state();  // inputs are re-driven every cycle
      outs[lane] = run_scalar_lane(desc, opt, eopt, ports, rtl, lane,
                                   lane == 0 ? &result.vectors : nullptr);
    }
  }

  merge_outcomes(result, outs, desc, opt, eopt, nl, ports, eopt.batch);
  return result;
}

std::string emit_verilog_testbench(const Netlist& nl,
                                   const std::vector<EquivVector>& vectors) {
  if (vectors.empty()) fail("emit_verilog_testbench: no vectors");
  const std::size_t clients = vectors[0].in.size();
  std::ostringstream os;
  os << "// Self-checking testbench generated by hlcs (golden-model "
        "vectors)\n";
  os << "`timescale 1ns/1ps\n";
  os << "module " << nl.name() << "_tb;\n";
  os << "  reg clk = 0;\n  always #5 clk = ~clk;\n";
  os << "  reg rst;\n";

  auto width_of = [&](const std::string& name) {
    return nl.nets()[nl.find(name)].width;
  };
  for (std::size_t c = 0; c < clients; ++c) {
    os << "  reg " << req_port(c) << ";\n";
    os << "  reg [" << width_of(sel_port(c)) - 1 << ":0] " << sel_port(c)
       << ";\n";
    os << "  reg [" << width_of(args_port(c)) - 1 << ":0] " << args_port(c)
       << ";\n";
    os << "  wire " << grant_port(c) << ";\n";
    os << "  wire [" << width_of(ret_port(c)) - 1 << ":0] " << ret_port(c)
       << ";\n";
  }

  os << "\n  " << nl.name() << " dut (\n    .clk(clk), .rst(rst)";
  for (std::size_t c = 0; c < clients; ++c) {
    os << ",\n    ." << req_port(c) << "(" << req_port(c) << "), ."
       << sel_port(c) << "(" << sel_port(c) << "), ." << args_port(c) << "("
       << args_port(c) << "),\n    ." << grant_port(c) << "(" << grant_port(c)
       << "), ." << ret_port(c) << "(" << ret_port(c) << ")";
  }
  os << "\n  );\n\n";

  os << "  integer errors = 0;\n";
  os << "  task check(input exp, input act, input [31:0] cyc);\n"
        "    if (exp !== act) begin\n"
        "      $display(\"MISMATCH at cycle %0d\", cyc);\n"
        "      errors = errors + 1;\n"
        "    end\n"
        "  endtask\n\n";

  os << "  initial begin\n";
  for (std::size_t i = 0; i < vectors.size(); ++i) {
    const EquivVector& v = vectors[i];
    // Drive just after the previous edge, check combinational grants
    // before the next edge, then latch.
    os << "    #1; rst = " << (v.rst ? 1 : 0) << ";";
    for (std::size_t c = 0; c < clients; ++c) {
      os << " " << req_port(c) << " = " << (v.in[c].req ? 1 : 0) << "; "
         << sel_port(c) << " = " << v.in[c].sel << "; " << args_port(c)
         << " = " << width_of(args_port(c)) << "'d" << v.in[c].args << ";";
    }
    os << "\n    #2;\n";
    for (std::size_t c = 0; c < clients; ++c) {
      os << "    check(1'b" << (v.grant[c] ? 1 : 0) << ", " << grant_port(c)
         << ", " << i << ");\n";
    }
    os << "    @(posedge clk);\n";
  }
  os << "    if (errors == 0) $display(\"PASS: %0d vectors\", "
     << vectors.size() << ");\n";
  os << "    else $fatal(1, \"FAIL: %0d mismatches\", errors);\n";
  os << "    $finish;\n  end\nendmodule\n";
  return os.str();
}

}  // namespace hlcs::synth
