// Pre/post-synthesis equivalence checking as a library service.
//
// check_equivalence() drives the synthesised netlist and the golden
// cycle model in lock step with randomized-but-reproducible stimulus
// (clients request random methods, re-rolling after a few blocked
// cycles so guard-heavy objects keep making progress) and compares
// grants, return values and every state variable on every cycle.
// It also records the stimulus/response vectors, which
// emit_verilog_testbench() can turn into a self-checking Verilog bench
// for downstream tools.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hlcs/synth/comm_synth.hpp"
#include "hlcs/synth/golden.hpp"
#include "hlcs/synth/rtl_sim.hpp"

namespace hlcs::synth {

struct EquivOptions {
  std::size_t cycles = 1000;
  std::uint64_t seed = 0xEC1;
  /// Probability (percent) that an idle client issues a request.
  unsigned request_percent = 50;
  /// Re-roll a blocked request after this many ungranted cycles.
  unsigned reroll_after = 5;
  /// Probability (percent, per cycle) of pulsing the synchronous reset.
  unsigned reset_percent = 0;
};

/// One recorded cycle of the lock-step run (also usable as a test
/// vector for the emitted Verilog testbench).
struct EquivVector {
  bool rst = false;
  std::vector<GoldenCycleModel::ClientIn> in;
  /// Expected combinational outputs (from the golden model).
  std::vector<bool> grant;
  std::vector<std::uint64_t> ret;  ///< valid where grant is set
  /// Expected registered state AFTER the edge.
  std::vector<std::uint64_t> vars;
};

struct EquivResult {
  bool equal = true;
  std::size_t cycles = 0;
  std::size_t grants = 0;
  std::string first_mismatch;  ///< empty when equal
  std::vector<EquivVector> vectors;

  explicit operator bool() const { return equal; }
};

/// Lock-step comparison of synthesize(desc, opt) against
/// GoldenCycleModel(desc, opt).
EquivResult check_equivalence(const ObjectDesc& desc, const SynthOptions& opt,
                              const EquivOptions& eopt = {});

/// Render a self-checking Verilog testbench that instantiates the
/// synthesised module and replays the recorded vectors, $fatal-ing on
/// the first divergence.  `module_name` must match emit_verilog(nl).
std::string emit_verilog_testbench(const Netlist& nl,
                                   const std::vector<EquivVector>& vectors);

}  // namespace hlcs::synth
