// Pre/post-synthesis equivalence checking as a library service.
//
// check_equivalence() drives the synthesised netlist and the golden
// cycle model in lock step with randomized-but-reproducible stimulus
// (clients request random methods, re-rolling after a few blocked
// cycles so guard-heavy objects keep making progress) and compares
// grants, return values and every state variable on every cycle.
// It also records the stimulus/response vectors, which
// emit_verilog_testbench() can turn into a self-checking Verilog bench
// for downstream tools.
//
// The check scales out in two independent directions:
//   - lanes: N independently seeded stimulus streams (lane i's RNG is
//     seeded with sim::lane_seed(seed, i)), each a complete lock-step
//     run.  More lanes = more coverage from one invocation, and any
//     failure names the lane and its standalone-reproducible seed.
//   - batch: evaluate lanes K*64 at a time on the bit-parallel engine
//     (synth::BatchNetlistSim), sharding superlane blocks across worker
//     threads.  Stimulus depends only on each lane's RNG and the golden
//     model, never on RTL outputs, so batch and scalar backends produce
//     bit-identical verdicts at any thread count, lane count, or
//     superlane width; the first mismatching lane is re-run on the
//     scalar engine to regenerate the single-lane EquivVector
//     diagnostics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hlcs/synth/batch_tape.hpp"
#include "hlcs/synth/comm_synth.hpp"
#include "hlcs/synth/golden.hpp"
#include "hlcs/synth/rtl_sim.hpp"

namespace hlcs::synth {

struct EquivOptions {
  std::size_t cycles = 1000;
  std::uint64_t seed = 0xEC1;
  /// Probability (percent) that an idle client issues a request.
  unsigned request_percent = 50;
  /// Re-roll a blocked request after this many ungranted cycles.
  unsigned reroll_after = 5;
  /// Probability (percent, per cycle) of pulsing the synchronous reset.
  unsigned reset_percent = 0;
  /// Independently seeded stimulus streams, each `cycles` long.
  std::size_t lanes = 1;
  /// Evaluate lanes on the bit-parallel engine instead of one scalar
  /// simulation per lane.  Verdicts are bit-identical either way.
  bool batch = false;
  /// Worker threads for batch mode (one superlane block per claim);
  /// 0 = hardware concurrency.  Ignored when batch is false.
  unsigned threads = 1;
  /// Superlane factor for batch mode: 1, 4 or 8 (K*64 lanes advanced
  /// per tape instruction), or 0 to pick cpu_superlanes().  The
  /// partition of lanes into blocks depends only on (lanes, superlanes),
  /// never on thread count.  Ignored when batch is false.
  unsigned superlanes = 1;
  /// Run each block's comb tape as native code (hlcs/synth/jit.hpp).
  /// Verdicts are bit-identical to the interpreter; a silent no-op on
  /// hosts without JIT support.  Ignored when batch is false.
  bool jit = false;
};

/// One recorded cycle of the lock-step run (also usable as a test
/// vector for the emitted Verilog testbench).
struct EquivVector {
  bool rst = false;
  std::vector<GoldenCycleModel::ClientIn> in;
  /// Expected combinational outputs (from the golden model).
  std::vector<bool> grant;
  std::vector<std::uint64_t> ret;  ///< valid where grant is set
  /// Expected registered state AFTER the edge.
  std::vector<std::uint64_t> vars;
};

struct EquivResult {
  bool equal = true;
  std::size_t cycles = 0;  ///< total simulated cycles across all lanes
  std::size_t grants = 0;  ///< total grants across all lanes
  std::string first_mismatch;  ///< empty when equal; names lane + seed
  /// Recorded golden vectors: the lowest mismatching lane's stream when
  /// unequal, lane 0's stream otherwise.
  std::vector<EquivVector> vectors;
  std::size_t lanes = 1;
  /// Lowest mismatching lane and its derived seed (valid when !equal).
  /// Re-running with that value as the root seed and lanes=1 replays
  /// the failing stream standalone.
  std::size_t first_bad_lane = 0;
  std::uint64_t first_bad_seed = 0;
  /// Batch mode only: fraction of comb evaluations that took the
  /// per-lane scalar fallback (0 when fully bit-parallel).
  double batch_scalar_fraction = 0.0;
  /// Batch mode only: engine counters summed over every block (fused
  /// superinstructions executed, scalar-fallback tape instructions,
  /// plane instructions, ...).
  BatchStats batch_stats;
  /// Batch+jit mode only: JIT compile/runtime counters summed over
  /// every block in block order.  enabled is false when the JIT was
  /// requested but unavailable (or never requested).
  JitStats jit_stats;

  explicit operator bool() const { return equal; }
};

/// Lock-step comparison of synthesize(desc, opt) against
/// GoldenCycleModel(desc, opt).
EquivResult check_equivalence(const ObjectDesc& desc, const SynthOptions& opt,
                              const EquivOptions& eopt = {});

/// Render a self-checking Verilog testbench that instantiates the
/// synthesised module and replays the recorded vectors, $fatal-ing on
/// the first divergence.  `module_name` must match emit_verilog(nl).
std::string emit_verilog_testbench(const Netlist& nl,
                                   const std::vector<EquivVector>& vectors);

}  // namespace hlcs::synth
