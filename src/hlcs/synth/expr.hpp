// Expression IR for the synthesisable subset.
//
// The ODETTE tool accepted a restricted SystemC+ language; this library
// makes the restriction explicit: a synthesisable object is *described*
// as data (hlcs/synth/object_desc.hpp) whose guards and method bodies are
// trees of these expression nodes.  One description feeds both the
// reference interpreter (pre-synthesis executable semantics) and the
// netlist compiler (post-synthesis), so the paper's consistency check is
// a real comparison of two independent evaluators.
//
// All values are unsigned bit-vectors of width 1..64; arithmetic wraps
// (i.e. is performed modulo 2^width), comparisons are unsigned.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "hlcs/sim/assert.hpp"

namespace hlcs::synth {

using ExprId = std::uint32_t;
inline constexpr ExprId kNoExpr = ~ExprId{0};

enum class ExprOp : std::uint8_t {
  // leaves
  Const,  ///< imm = value
  Var,    ///< imm = variable / net index
  Arg,    ///< imm = argument index (object descriptions only)
  // unary (operand a)
  Not,     ///< bitwise complement
  Neg,     ///< two's complement negation
  RedOr,   ///< OR-reduction to 1 bit
  RedAnd,  ///< AND-reduction to 1 bit
  ZExt,    ///< zero-extend a to this node's width
  Slice,   ///< bits [imm +: width] of a
  // binary (operands a, b)
  Add, Sub, Mul,
  And, Or, Xor,
  Eq, Ne, Lt, Le, Gt, Ge,  ///< unsigned comparisons, 1-bit result
  Shl, Shr,                ///< shift a by b (b unsigned)
  Concat,                  ///< {a, b}: a is the high part
  // ternary (operands a=sel, b=then, c=else)
  Mux,
};

bool is_unary(ExprOp op);
bool is_binary(ExprOp op);
const char* op_name(ExprOp op);

struct ExprNode {
  ExprOp op;
  unsigned width;         ///< result width in bits
  std::uint64_t imm = 0;  ///< Const value / Var index / Arg index / Slice lsb
  ExprId a = kNoExpr;
  ExprId b = kNoExpr;
  ExprId c = kNoExpr;
};

/// Append-only arena of expression nodes.  Children always precede
/// parents, so iterating by index is a topological order.
class ExprArena {
public:
  const ExprNode& at(ExprId id) const {
    HLCS_ASSERT(id < nodes_.size(), "ExprArena: bad ExprId");
    return nodes_[id];
  }
  std::size_t size() const { return nodes_.size(); }

  ExprId cst(std::uint64_t value, unsigned width) {
    check_width(width);
    return push({ExprOp::Const, width, value & mask(width)});
  }
  ExprId var(std::uint32_t index, unsigned width) {
    check_width(width);
    return push({ExprOp::Var, width, index});
  }
  ExprId arg(std::uint32_t index, unsigned width) {
    check_width(width);
    return push({ExprOp::Arg, width, index});
  }
  ExprId un(ExprOp op, ExprId a) {
    HLCS_ASSERT(is_unary(op) && op != ExprOp::ZExt && op != ExprOp::Slice,
                "ExprArena::un: not a plain unary op");
    const unsigned wa = at(a).width;
    const unsigned w =
        (op == ExprOp::RedOr || op == ExprOp::RedAnd) ? 1 : wa;
    return push({op, w, 0, a});
  }
  ExprId zext(ExprId a, unsigned width) {
    check_width(width);
    HLCS_ASSERT(width >= at(a).width, "zext must not narrow");
    return push({ExprOp::ZExt, width, 0, a});
  }
  ExprId slice(ExprId a, unsigned lsb, unsigned width) {
    check_width(width);
    HLCS_ASSERT(lsb + width <= at(a).width, "slice out of range");
    return push({ExprOp::Slice, width, lsb, a});
  }
  ExprId bin(ExprOp op, ExprId a, ExprId b) {
    HLCS_ASSERT(is_binary(op), "ExprArena::bin: not a binary op");
    const unsigned wa = at(a).width;
    const unsigned wb = at(b).width;
    unsigned w;
    switch (op) {
      case ExprOp::Eq: case ExprOp::Ne: case ExprOp::Lt: case ExprOp::Le:
      case ExprOp::Gt: case ExprOp::Ge:
        HLCS_ASSERT(wa == wb, "comparison operand widths differ");
        w = 1;
        break;
      case ExprOp::Shl: case ExprOp::Shr:
        w = wa;
        break;
      case ExprOp::Concat:
        HLCS_ASSERT(wa + wb <= 64, "concat exceeds 64 bits");
        w = wa + wb;
        break;
      default:
        HLCS_ASSERT(wa == wb, "binary operand widths differ");
        w = wa;
        break;
    }
    return push({op, w, 0, a, b});
  }
  ExprId mux(ExprId sel, ExprId then_e, ExprId else_e) {
    HLCS_ASSERT(at(sel).width == 1, "mux selector must be 1 bit");
    HLCS_ASSERT(at(then_e).width == at(else_e).width,
                "mux branch widths differ");
    return push({ExprOp::Mux, at(then_e).width, 0, sel, then_e, else_e});
  }

  static constexpr std::uint64_t mask(unsigned w) {
    return w >= 64 ? ~0ull : (1ull << w) - 1;
  }

private:
  static void check_width(unsigned w) {
    HLCS_ASSERT(w >= 1 && w <= 64, "expression width must be in [1,64]");
  }
  ExprId push(ExprNode n) {
    nodes_.push_back(n);
    return static_cast<ExprId>(nodes_.size() - 1);
  }
  std::vector<ExprNode> nodes_;
};

/// Evaluate an expression.  `vars` / `args` supply leaf values; widths of
/// supplied values are trusted (the arena enforces widths structurally).
std::uint64_t eval(const ExprArena& arena, ExprId root,
                   const std::vector<std::uint64_t>& vars,
                   const std::vector<std::uint64_t>& args);

/// Longest path (levels of logic) of an expression; leaves are depth 0.
unsigned depth(const ExprArena& arena, ExprId root);

/// Human-readable rendering (for diagnostics and tests).
std::string to_string(const ExprArena& arena, ExprId root);

/// Clone an expression tree from one arena into another, rewriting Var
/// and Arg leaves through the supplied mappers.  Used by the synthesiser
/// (Vars -> nets, Args -> port slices) and by the polymorphism transform
/// (Vars -> per-implementation variables).
ExprId clone_expr(const ExprArena& src, ExprId id, ExprArena& dst,
                  const std::function<ExprId(std::uint32_t, unsigned)>& map_var,
                  const std::function<ExprId(std::uint32_t, unsigned)>& map_arg);

}  // namespace hlcs::synth
