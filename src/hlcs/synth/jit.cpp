#include "hlcs/synth/jit.hpp"

#include <bit>
#include <chrono>

#include "hlcs/sim/assert.hpp"
#include "hlcs/synth/batch_tape.hpp"

namespace hlcs::synth {

using jitx64::Alu;
using jitx64::Cond;
using jitx64::Reg;
using jitx64::X64Emitter;

namespace {

/// Virtual-stack register pool for the scalar JIT: depths 0..4 live here
/// permanently (all caller-saved, so segments need no save/restore);
/// deeper values spill to the rsp frame.  R10/R11 are the op scratches.
constexpr Reg kPool[] = {Reg::RAX, Reg::RCX, Reg::RDX, Reg::R8, Reg::R9};
constexpr std::size_t kPoolN = std::size(kPool);

/// Same classification the batch engine uses: everything except Mul and
/// the data-dependent shifts lowers to native code.
bool jit_friendly(TapeOp op) {
  switch (op) {
    case TapeOp::Mul:
    case TapeOp::Shl:
    case TapeOp::Shr:
      return false;
    default:
      return true;
  }
}

unsigned mask_width(std::uint64_t mask) {
  return static_cast<unsigned>(std::popcount(mask));
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* tape_op_name(TapeOp op) {
  switch (op) {
    case TapeOp::PushConst: return "push_const";
    case TapeOp::PushNet: return "push_net";
    case TapeOp::PushSlot: return "push_slot";
    case TapeOp::StoreSlot: return "store_slot";
    case TapeOp::Not: return "not";
    case TapeOp::Neg: return "neg";
    case TapeOp::RedOr: return "red_or";
    case TapeOp::RedAnd: return "red_and";
    case TapeOp::Slice: return "slice";
    case TapeOp::Add: return "add";
    case TapeOp::Sub: return "sub";
    case TapeOp::Mul: return "mul";
    case TapeOp::And: return "and";
    case TapeOp::Or: return "or";
    case TapeOp::Xor: return "xor";
    case TapeOp::Eq: return "eq";
    case TapeOp::Ne: return "ne";
    case TapeOp::Lt: return "lt";
    case TapeOp::Le: return "le";
    case TapeOp::Gt: return "gt";
    case TapeOp::Ge: return "ge";
    case TapeOp::Shl: return "shl";
    case TapeOp::Shr: return "shr";
    case TapeOp::Concat: return "concat";
    case TapeOp::Mux: return "mux";
  }
  return "?";
}

std::vector<std::pair<std::string, std::uint64_t>> JitStats::deopt_hits()
    const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (std::size_t i = 0; i < kNumTapeOps; ++i) {
    if (deopt_ops[i] != 0) {
      out.emplace_back(tape_op_name(static_cast<TapeOp>(i)), deopt_ops[i]);
    }
  }
  return out;
}

JitStats& JitStats::operator+=(const JitStats& o) {
  enabled = enabled || o.enabled;
  compile_ns += o.compile_ns;
  code_bytes += o.code_bytes;
  stencils += o.stencils;
  segments += o.segments;
  combs_native += o.combs_native;
  combs_deopt += o.combs_deopt;
  native_calls += o.native_calls;
  deopt_comb_evals += o.deopt_comb_evals;
  for (std::size_t i = 0; i < kNumTapeOps; ++i) deopt_ops[i] += o.deopt_ops[i];
  return *this;
}

bool TapeJit::host_supported() { return jitx64::host_supported(); }

// ---------------------------------------------------------------------
// Scalar tape -> native code.
// ---------------------------------------------------------------------

TapeJit::TapeJit(const TapeProgram& tape) : tape_(tape) {
  if (!host_supported()) return;
  const std::uint64_t t0 = now_ns();
  spill_slots_ = tape_.max_stack() > kPoolN
                     ? tape_.max_stack() - static_cast<std::uint32_t>(kPoolN)
                     : 0;
  const std::int32_t frame = static_cast<std::int32_t>(8 * spill_slots_);
  const auto& combs = tape_.combs();
  const auto& code = tape_.code();

  // Classify first: a comb deopts iff its tape contains an op with
  // lane-value-dependent cross-bit structure (same rule as the batch
  // engine's scalar fallback).
  std::vector<std::uint8_t> native(combs.size(), 0);
  for (std::size_t ci = 0; ci < combs.size(); ++ci) {
    bool ok = true;
    for (std::uint32_t i = combs[ci].begin; i < combs[ci].end && ok; ++i) {
      if (!jit_friendly(code[i].op)) {
        ++stats_.combs_deopt;
        ++stats_.deopt_ops[static_cast<std::size_t>(code[i].op)];
        ok = false;
      }
    }
    native[ci] = ok ? 1 : 0;
  }

  // Maximal runs of native combs become one straight-line segment
  // function each; deopt combs interleave as interpreter steps so the
  // topological evaluation order is preserved exactly.
  X64Emitter e;
  for (std::size_t ci = 0; ci < combs.size();) {
    if (!native[ci]) {
      steps_.push_back(Step{false, static_cast<std::uint32_t>(ci)});
      ++ci;
      continue;
    }
    const std::uint32_t off = static_cast<std::uint32_t>(e.size());
    e.sub_rsp(frame);
    while (ci < combs.size() && native[ci]) {
      emit_comb(e, combs[ci]);
      ++ci;
    }
    e.add_rsp(frame);
    e.ret();
    steps_.push_back(Step{true, off});
    ++stats_.segments;
  }

  if (e.size() != 0 && code_.install(e.bytes())) {
    stats_.enabled = true;
    stats_.code_bytes = code_.code_size();
  } else {
    steps_.clear();  // callers fall back to the interpreter wholesale
  }
  stats_.compile_ns = now_ns() - t0;
}

bool TapeJit::emit_comb(X64Emitter& e, const TapeComb& c) {
  const TapeInsn* code = tape_.code().data();
  const auto disp = [](std::size_t d) {
    return static_cast<std::int32_t>(8 * (d - kPoolN));
  };
  // Value at depth d, loaded into `scratch` if it lives in the frame.
  const auto load = [&](std::size_t d, Reg scratch) -> Reg {
    if (d < kPoolN) return kPool[d];
    e.mov_rm(scratch, Reg::RSP, disp(d));
    return scratch;
  };
  // Park a computed value back at depth d (no-op when it is already in
  // that depth's pool register).
  const auto writeback = [&](std::size_t d, Reg r) {
    if (d < kPoolN) {
      e.mov_rr(kPool[d], r);
    } else {
      e.mov_mr(Reg::RSP, disp(d), r);
    }
  };
  const auto apply_mask = [&](Reg r, std::uint64_t m) {
    if (m == ~std::uint64_t{0}) return;
    if (m <= 0x7FFFFFFFull) {
      e.alu_ri32(Alu::And, r, static_cast<std::int32_t>(m));
    } else {
      e.mov_ri(Reg::R11, m);
      e.alu_rr(Alu::And, r, Reg::R11);
    }
  };

  std::size_t n = 0;  // virtual stack depth
  const auto binop = [&](Alu op, std::uint64_t m, bool do_mask) {
    --n;
    const Reg rr = load(n, Reg::R11);
    const Reg rl = load(n - 1, Reg::R10);
    e.alu_rr(op, rl, rr);
    if (do_mask) apply_mask(rl, m);
    writeback(n - 1, rl);
  };
  const auto cmpop = [&](Cond cc) {
    --n;
    const Reg rr = load(n, Reg::R11);
    const Reg rl = load(n - 1, Reg::R10);
    e.alu_rr(Alu::Cmp, rl, rr);
    e.setcc_zx(cc, rl);
    writeback(n - 1, rl);
  };

  for (std::uint32_t i = c.begin; i < c.end; ++i) {
    const TapeInsn& in = code[i];
    ++stats_.stencils;
    switch (in.op) {
      case TapeOp::PushConst:
        if (n < kPoolN) {
          e.mov_ri(kPool[n], in.imm);
        } else if (in.imm <= 0x7FFFFFFFull) {
          e.mov_mi32(Reg::RSP, disp(n), static_cast<std::int32_t>(in.imm));
        } else {
          e.mov_ri(Reg::R10, in.imm);
          e.mov_mr(Reg::RSP, disp(n), Reg::R10);
        }
        ++n;
        break;
      case TapeOp::PushNet:
      case TapeOp::PushSlot: {
        const Reg base = in.op == TapeOp::PushNet ? Reg::RDI : Reg::RSI;
        const std::int32_t src = static_cast<std::int32_t>(8 * in.aux);
        if (n < kPoolN) {
          e.mov_rm(kPool[n], base, src);
        } else {
          e.mov_rm(Reg::R10, base, src);
          e.mov_mr(Reg::RSP, disp(n), Reg::R10);
        }
        ++n;
        break;
      }
      case TapeOp::StoreSlot: {
        --n;
        const Reg r = load(n, Reg::R10);
        e.mov_mr(Reg::RSI, static_cast<std::int32_t>(8 * in.aux), r);
        break;
      }
      case TapeOp::Not: {
        const Reg r = load(n - 1, Reg::R10);
        e.not_r(r);
        apply_mask(r, in.imm);
        writeback(n - 1, r);
        break;
      }
      case TapeOp::Neg: {
        const Reg r = load(n - 1, Reg::R10);
        e.neg_r(r);
        apply_mask(r, in.imm);
        writeback(n - 1, r);
        break;
      }
      case TapeOp::RedOr: {
        const Reg r = load(n - 1, Reg::R10);
        e.test_rr(r, r);
        e.setcc_zx(Cond::NE, r);
        writeback(n - 1, r);
        break;
      }
      case TapeOp::RedAnd: {
        const Reg r = load(n - 1, Reg::R10);
        if (in.imm <= 0x7FFFFFFFull) {
          e.alu_ri32(Alu::Cmp, r, static_cast<std::int32_t>(in.imm));
        } else {
          e.mov_ri(Reg::R11, in.imm);
          e.alu_rr(Alu::Cmp, r, Reg::R11);
        }
        e.setcc_zx(Cond::E, r);
        writeback(n - 1, r);
        break;
      }
      case TapeOp::Slice: {
        const Reg r = load(n - 1, Reg::R10);
        e.shr_ri(r, in.aux);
        apply_mask(r, in.imm);
        writeback(n - 1, r);
        break;
      }
      case TapeOp::Add: binop(Alu::Add, in.imm, true); break;
      case TapeOp::Sub: binop(Alu::Sub, in.imm, true); break;
      case TapeOp::And: binop(Alu::And, 0, false); break;
      case TapeOp::Or: binop(Alu::Or, 0, false); break;
      case TapeOp::Xor: binop(Alu::Xor, 0, false); break;
      case TapeOp::Eq: cmpop(Cond::E); break;
      case TapeOp::Ne: cmpop(Cond::NE); break;
      case TapeOp::Lt: cmpop(Cond::B); break;
      case TapeOp::Le: cmpop(Cond::BE); break;
      case TapeOp::Gt: cmpop(Cond::A); break;
      case TapeOp::Ge: cmpop(Cond::AE); break;
      case TapeOp::Concat: {
        --n;
        const Reg rr = load(n, Reg::R11);
        const Reg rl = load(n - 1, Reg::R10);
        e.shl_ri(rl, in.aux);
        e.alu_rr(Alu::Or, rl, rr);
        writeback(n - 1, rl);
        break;
      }
      case TapeOp::Mux: {
        n -= 2;  // sel at n-1, then at n, else at n+1
        const Reg rs = load(n - 1, Reg::R10);
        const Reg rt = load(n, Reg::R11);
        e.test_rr(rs, rs);
        if (n + 1 < kPoolN) {
          e.cmov_rr(Cond::E, rt, kPool[n + 1]);
        } else {
          e.cmov_rm(Cond::E, rt, Reg::RSP, disp(n + 1));
        }
        writeback(n - 1, rt);
        break;
      }
      case TapeOp::Mul:
      case TapeOp::Shl:
      case TapeOp::Shr:
        fail("tape jit: non-native op in a comb classified native");
    }
  }
  // The comb's value sits at depth 0 (always pool register rax).
  e.mov_mr(Reg::RDI, static_cast<std::int32_t>(8 * c.target), Reg::RAX);
  ++stats_.combs_native;
  return true;
}

void TapeJit::run_full(std::uint64_t* nets, std::uint64_t* stack,
                       std::uint64_t* slots, NetlistStats* stats) {
  using Fn = void (*)(std::uint64_t*, std::uint64_t*);
  const auto& combs = tape_.combs();
  const TapeInsn* code = tape_.code().data();
  for (const Step& s : steps_) {
    if (s.native) {
      code_.entry<Fn>(s.arg)(nets, slots);
      ++stats_.native_calls;
    } else {
      const TapeComb& c = combs[s.arg];
      nets[c.target] =
          tape_exec(code + c.begin, code + c.end, nets, stack, slots);
      ++stats_.deopt_comb_evals;
      if (stats != nullptr) stats->tape_instructions += c.end - c.begin;
    }
  }
  if (stats != nullptr) stats->combs_evaluated += combs.size();
}

// ---------------------------------------------------------------------
// Superlane tape -> native code over BatchTape's plane layout.
// ---------------------------------------------------------------------

namespace {

/// Where one row of an emit-time value lives: K words at [base+disp],
/// or a constant all-zero / all-one row (PushConst operands and reads
/// past a value's width never materialize).
struct RowSrc {
  enum Kind : std::uint8_t { Mem, Zero, Ones } kind;
  Reg base = Reg::RSI;
  std::int32_t disp = 0;
};

/// Emit-time plane-stack entry, mirroring BatchTape::Entry: rows either
/// borrowed from the net planes (rdi), owned in the scratch regions
/// (rsi), or a compile-time constant.
struct EV {
  bool is_const;
  Reg base = Reg::RSI;
  std::int32_t disp = 0;
  std::uint64_t cval = 0;
  unsigned w = 0;
};

RowSrc row_of(const EV& e, unsigned b, unsigned K) {
  if (e.is_const) {
    return RowSrc{b < 64 && ((e.cval >> b) & 1) != 0 ? RowSrc::Ones
                                                     : RowSrc::Zero};
  }
  if (b < e.w) {
    return RowSrc{RowSrc::Mem, e.base,
                  e.disp + static_cast<std::int32_t>(b * K * 8)};
  }
  return RowSrc{RowSrc::Zero};
}

}  // namespace

BatchJit::BatchJit(BatchTape& bt) : bt_(bt) {
  if (!host_supported()) return;
  const std::uint64_t t0 = now_ns();
  const unsigned K = bt_.super();
  const TapeProgram& tape = bt_.program();
  const auto& combs = tape.combs();
  const auto& code = tape.code();
  scratch_.resize(std::size_t{tape.max_stack() + tape.max_slots()} *
                      BatchTape::kLanes * K,
                  0);
  slot_w_.assign(tape.max_slots(), 0);
  slot_set_.assign(tape.max_slots(), 0);

  // Classification: a comb compiles iff the batch engine classified it
  // bit-parallel (no Mul/Shl/Shr) and its CSE slots are self-contained
  // (every PushSlot preceded by a StoreSlot in the same comb -- the tape
  // compiler guarantees this; a violation deopts defensively).
  std::vector<std::uint8_t> native(combs.size(), 0);
  for (std::size_t ci = 0; ci < combs.size(); ++ci) {
    if (!bt_.bcombs_[ci].parallel) {
      for (std::uint32_t i = combs[ci].begin; i < combs[ci].end; ++i) {
        if (!jit_friendly(code[i].op)) {
          ++stats_.deopt_ops[static_cast<std::size_t>(code[i].op)];
          break;
        }
      }
      ++stats_.combs_deopt;
      continue;
    }
    std::fill(slot_set_.begin(), slot_set_.end(), 0);
    bool ok = true;
    for (std::uint32_t i = combs[ci].begin; i < combs[ci].end && ok; ++i) {
      if (code[i].op == TapeOp::StoreSlot) {
        slot_set_[code[i].aux] = 1;
      } else if (code[i].op == TapeOp::PushSlot && !slot_set_[code[i].aux]) {
        ok = false;
        ++stats_.deopt_ops[static_cast<std::size_t>(TapeOp::PushSlot)];
      }
    }
    if (!ok) {
      ++stats_.combs_deopt;
      interp_plane_insns_ += bt_.bcombs_[ci].end - bt_.bcombs_[ci].begin;
      interp_fused_ += bt_.bcombs_[ci].fused;
      continue;
    }
    native[ci] = 1;
  }

  X64Emitter e;
  for (std::size_t ci = 0; ci < combs.size();) {
    if (!native[ci]) {
      steps_.push_back(Step{false, static_cast<std::uint32_t>(ci)});
      ++ci;
      continue;
    }
    const std::uint32_t off = static_cast<std::uint32_t>(e.size());
    e.push_r(Reg::RBX);
    if (K == 8) {
      e.push_r(Reg::R12);
      e.push_r(Reg::R13);
      e.push_r(Reg::R14);
      e.push_r(Reg::R15);
    }
    while (ci < combs.size() && native[ci]) {
      emit_comb(e, ci);
      ++ci;
    }
    if (K == 8) {
      e.pop_r(Reg::R15);
      e.pop_r(Reg::R14);
      e.pop_r(Reg::R13);
      e.pop_r(Reg::R12);
    }
    e.pop_r(Reg::RBX);
    e.ret();
    steps_.push_back(Step{true, off});
    ++stats_.segments;
  }

  if (e.size() != 0 && code_.install(e.bytes())) {
    stats_.enabled = true;
    stats_.code_bytes = code_.code_size();
  } else {
    steps_.clear();
  }
  stats_.compile_ns = now_ns() - t0;
}

bool BatchJit::emit_comb(X64Emitter& e, std::size_t ci) {
  const unsigned K = bt_.super();
  const TapeProgram& tape = bt_.program();
  const TapeComb& c = tape.combs()[ci];
  const TapeInsn* code = tape.code().data();
  const std::size_t region_words = std::size_t{BatchTape::kLanes} * K;

  // Scratch layout at [rsi]: one fixed 64-row region per stack depth,
  // then one per CSE slot (mirrors BatchTape's stack_planes_ /
  // slot_planes_ split, so the interpreter's aliasing argument carries
  // over unchanged).
  const auto region_disp = [&](std::size_t d) {
    return static_cast<std::int32_t>(d * region_words * 8);
  };
  const auto slot_disp = [&](std::uint32_t s) {
    return static_cast<std::int32_t>((tape.max_stack() + s) * region_words * 8);
  };
  const auto net_ev = [&](std::uint32_t net) {
    return EV{false, Reg::RDI,
              static_cast<std::int32_t>(std::size_t{bt_.plane_off_[net]} * K *
                                        8),
              0, bt_.width_[net]};
  };
  const auto creg = [](unsigned j) { return static_cast<Reg>(Reg::R8 + j); };
  const auto load_row = [&](Reg dst, RowSrc s, unsigned j) {
    switch (s.kind) {
      case RowSrc::Mem:
        e.mov_rm(dst, s.base, s.disp + static_cast<std::int32_t>(8 * j));
        break;
      case RowSrc::Zero: e.mov_ri(dst, 0); break;
      case RowSrc::Ones: e.mov_ri(dst, ~std::uint64_t{0}); break;
    }
  };
  // dst = dst OP row-word (And/Or/Xor only; identity rows fold away).
  const auto alu_row = [&](Alu op, Reg dst, RowSrc s, unsigned j) {
    switch (s.kind) {
      case RowSrc::Mem:
        e.alu_rm(op, dst, s.base, s.disp + static_cast<std::int32_t>(8 * j));
        break;
      case RowSrc::Zero:
        if (op == Alu::And) e.mov_ri(dst, 0);
        break;
      case RowSrc::Ones:
        if (op != Alu::And) e.alu_ri32(op, dst, -1);
        break;
    }
  };
  const auto store_row = [&](std::int32_t disp, unsigned j, Reg src) {
    e.mov_mr(Reg::RSI, disp + static_cast<std::int32_t>(8 * j), src);
  };

  std::vector<EV> st;
  st.reserve(tape.max_stack());
  std::fill(slot_set_.begin(), slot_set_.end(), 0);

  // Selector-style truthiness OR-accumulation into the carry registers
  // (Mux selectors, RedOr).
  const auto accum_or = [&](const EV& v) {
    for (unsigned j = 0; j < K; ++j) e.mov_ri(creg(j), 0);
    for (unsigned b = 0; b < v.w; ++b) {
      const RowSrc r = row_of(v, b, K);
      for (unsigned j = 0; j < K; ++j) alu_row(Alu::Or, creg(j), r, j);
    }
  };
  // Borrow chain for the ordered compares: carry out of x + ~y + 1 over
  // the full width is (x >= y) per lane -- same formula, same row
  // iteration order as BatchTape::run_planes.
  const auto emit_cmp = [&](const EV& x, const EV& y, bool invert,
                            std::size_t depth) -> EV {
    const unsigned w = x.w > y.w ? x.w : y.w;
    for (unsigned j = 0; j < K; ++j) e.mov_ri(creg(j), ~std::uint64_t{0});
    for (unsigned b = 0; b < w; ++b) {
      const RowSrc a = row_of(x, b, K);
      const RowSrc q = row_of(y, b, K);
      for (unsigned j = 0; j < K; ++j) {
        load_row(Reg::RAX, a, j);
        load_row(Reg::RCX, q, j);
        e.not_r(Reg::RCX);  // qv = ~q
        e.mov_rr(Reg::RDX, Reg::RAX);
        e.alu_rr(Alu::And, Reg::RDX, Reg::RCX);  // av & qv
        e.alu_rr(Alu::Xor, Reg::RAX, Reg::RCX);  // av ^ qv
        e.alu_rr(Alu::And, creg(j), Reg::RAX);
        e.alu_rr(Alu::Or, creg(j), Reg::RDX);
      }
    }
    const std::int32_t rd = region_disp(depth);
    for (unsigned j = 0; j < K; ++j) {
      if (invert) e.not_r(creg(j));
      store_row(rd, j, creg(j));
    }
    return EV{false, Reg::RSI, rd, 0, 1};
  };

  for (std::uint32_t i = c.begin; i < c.end; ++i) {
    const TapeInsn& in = code[i];
    ++stats_.stencils;
    const std::size_t n = st.size();
    switch (in.op) {
      case TapeOp::PushConst:
        // No materialization: constant rows fold into their consumers,
        // which is the "patched immediates" half of copy-and-patch.
        st.push_back(EV{true, Reg::RSI, 0, in.imm,
                        static_cast<unsigned>(std::bit_width(in.imm))});
        break;
      case TapeOp::PushNet: st.push_back(net_ev(in.aux)); break;
      case TapeOp::PushSlot:
        // Classification rejected combs whose slots are not
        // self-contained, so the width here is always valid.
        if (!slot_set_[in.aux]) fail("batch jit: push of an unstored slot");
        st.push_back(EV{false, Reg::RSI, slot_disp(in.aux), 0,
                        slot_w_[in.aux]});
        break;
      case TapeOp::StoreSlot: {
        const EV v = st.back();
        st.pop_back();
        const std::int32_t sd = slot_disp(in.aux);
        for (unsigned b = 0; b < v.w; ++b) {
          const RowSrc r = row_of(v, b, K);
          for (unsigned j = 0; j < K; ++j) {
            load_row(Reg::RAX, r, j);
            store_row(sd + static_cast<std::int32_t>(b * K * 8), j, Reg::RAX);
          }
        }
        slot_w_[in.aux] = v.w;
        slot_set_[in.aux] = 1;
        break;
      }
      case TapeOp::Not: {
        EV& v = st.back();
        const unsigned w = mask_width(in.imm);
        const std::int32_t rd = region_disp(n - 1);
        for (unsigned b = 0; b < w; ++b) {
          const RowSrc r = row_of(v, b, K);  // same-index: in-place safe
          for (unsigned j = 0; j < K; ++j) {
            load_row(Reg::RAX, r, j);
            e.not_r(Reg::RAX);
            store_row(rd + static_cast<std::int32_t>(b * K * 8), j, Reg::RAX);
          }
        }
        v = EV{false, Reg::RSI, rd, 0, w};
        break;
      }
      case TapeOp::Neg: {
        // 0 + ~x + 1: carry chain collapses to carry &= ~x.
        EV& v = st.back();
        const unsigned w = mask_width(in.imm);
        const std::int32_t rd = region_disp(n - 1);
        for (unsigned j = 0; j < K; ++j) e.mov_ri(creg(j), ~std::uint64_t{0});
        for (unsigned b = 0; b < w; ++b) {
          const RowSrc r = row_of(v, b, K);
          for (unsigned j = 0; j < K; ++j) {
            load_row(Reg::RAX, r, j);
            e.not_r(Reg::RAX);  // q = ~x
            e.mov_rr(Reg::RCX, Reg::RAX);
            e.alu_rr(Alu::Xor, Reg::RCX, creg(j));  // q ^ carry
            store_row(rd + static_cast<std::int32_t>(b * K * 8), j, Reg::RCX);
            e.alu_rr(Alu::And, creg(j), Reg::RAX);  // carry &= q
          }
        }
        v = EV{false, Reg::RSI, rd, 0, w};
        break;
      }
      case TapeOp::RedOr: {
        EV& v = st.back();
        accum_or(v);
        const std::int32_t rd = region_disp(n - 1);
        for (unsigned j = 0; j < K; ++j) store_row(rd, j, creg(j));
        v = EV{false, Reg::RSI, rd, 0, 1};
        break;
      }
      case TapeOp::RedAnd: {
        EV& v = st.back();
        const unsigned w = mask_width(in.imm);  // operand width
        for (unsigned j = 0; j < K; ++j) e.mov_ri(creg(j), ~std::uint64_t{0});
        for (unsigned b = 0; b < w; ++b) {
          const RowSrc r = row_of(v, b, K);
          for (unsigned j = 0; j < K; ++j) alu_row(Alu::And, creg(j), r, j);
        }
        const std::int32_t rd = region_disp(n - 1);
        for (unsigned j = 0; j < K; ++j) store_row(rd, j, creg(j));
        v = EV{false, Reg::RSI, rd, 0, 1};
        break;
      }
      case TapeOp::Slice: {
        EV& v = st.back();
        const unsigned w = mask_width(in.imm);
        const std::int32_t rd = region_disp(n - 1);
        // Reads run ahead of writes: ascending is in-place safe.
        for (unsigned b = 0; b < w; ++b) {
          const RowSrc r = row_of(v, b + in.aux, K);
          for (unsigned j = 0; j < K; ++j) {
            load_row(Reg::RAX, r, j);
            store_row(rd + static_cast<std::int32_t>(b * K * 8), j, Reg::RAX);
          }
        }
        v = EV{false, Reg::RSI, rd, 0, w};
        break;
      }
      case TapeOp::Add:
      case TapeOp::Sub: {
        // Ripple carry/borrow: one K*64-lane full adder per bit row.
        const bool is_sub = in.op == TapeOp::Sub;
        const EV rhs = st.back();
        st.pop_back();
        EV& lhs = st.back();
        const unsigned w = mask_width(in.imm);
        const std::int32_t rd = region_disp(n - 2);
        for (unsigned j = 0; j < K; ++j) {
          e.mov_ri(creg(j), is_sub ? ~std::uint64_t{0} : 0);
        }
        for (unsigned b = 0; b < w; ++b) {
          const RowSrc a = row_of(lhs, b, K);  // same-index: in-place safe
          const RowSrc q = row_of(rhs, b, K);
          for (unsigned j = 0; j < K; ++j) {
            load_row(Reg::RAX, a, j);
            load_row(Reg::RCX, q, j);
            if (is_sub) e.not_r(Reg::RCX);
            e.mov_rr(Reg::RDX, Reg::RAX);
            e.alu_rr(Alu::And, Reg::RDX, Reg::RCX);  // av & qv
            e.alu_rr(Alu::Xor, Reg::RAX, Reg::RCX);  // x = av ^ qv
            e.mov_rr(Reg::RBX, Reg::RAX);
            e.alu_rr(Alu::Xor, Reg::RBX, creg(j));  // r = x ^ carry
            store_row(rd + static_cast<std::int32_t>(b * K * 8), j, Reg::RBX);
            e.alu_rr(Alu::And, creg(j), Reg::RAX);  // carry & x
            e.alu_rr(Alu::Or, creg(j), Reg::RDX);   // | (av & qv)
          }
        }
        lhs = EV{false, Reg::RSI, rd, 0, w};
        break;
      }
      case TapeOp::And:
      case TapeOp::Or:
      case TapeOp::Xor: {
        const EV rhs = st.back();
        st.pop_back();
        EV& lhs = st.back();
        const bool is_and = in.op == TapeOp::And;
        const unsigned w = is_and ? (lhs.w < rhs.w ? lhs.w : rhs.w)
                                  : (lhs.w > rhs.w ? lhs.w : rhs.w);
        const Alu op = is_and ? Alu::And : (in.op == TapeOp::Or ? Alu::Or
                                                                : Alu::Xor);
        const std::int32_t rd = region_disp(n - 2);
        for (unsigned b = 0; b < w; ++b) {
          const RowSrc a = row_of(lhs, b, K);
          const RowSrc q = row_of(rhs, b, K);
          for (unsigned j = 0; j < K; ++j) {
            load_row(Reg::RAX, a, j);
            alu_row(op, Reg::RAX, q, j);
            store_row(rd + static_cast<std::int32_t>(b * K * 8), j, Reg::RAX);
          }
        }
        lhs = EV{false, Reg::RSI, rd, 0, w};
        break;
      }
      case TapeOp::Eq:
      case TapeOp::Ne: {
        const EV rhs = st.back();
        st.pop_back();
        EV& lhs = st.back();
        const unsigned w = lhs.w > rhs.w ? lhs.w : rhs.w;
        for (unsigned j = 0; j < K; ++j) e.mov_ri(creg(j), ~std::uint64_t{0});
        for (unsigned b = 0; b < w; ++b) {
          const RowSrc a = row_of(lhs, b, K);
          const RowSrc q = row_of(rhs, b, K);
          for (unsigned j = 0; j < K; ++j) {
            load_row(Reg::RAX, a, j);
            alu_row(Alu::Xor, Reg::RAX, q, j);
            e.not_r(Reg::RAX);
            e.alu_rr(Alu::And, creg(j), Reg::RAX);
          }
        }
        const std::int32_t rd = region_disp(n - 2);
        for (unsigned j = 0; j < K; ++j) {
          if (in.op == TapeOp::Ne) e.not_r(creg(j));
          store_row(rd, j, creg(j));
        }
        lhs = EV{false, Reg::RSI, rd, 0, 1};
        break;
      }
      case TapeOp::Lt:
      case TapeOp::Le:
      case TapeOp::Gt:
      case TapeOp::Ge: {
        const EV rhs = st.back();
        st.pop_back();
        EV& lhs = st.back();
        switch (in.op) {
          case TapeOp::Lt: lhs = emit_cmp(lhs, rhs, true, n - 2); break;
          case TapeOp::Le: lhs = emit_cmp(rhs, lhs, false, n - 2); break;
          case TapeOp::Gt: lhs = emit_cmp(rhs, lhs, true, n - 2); break;
          default: lhs = emit_cmp(lhs, rhs, false, n - 2); break;
        }
        break;
      }
      case TapeOp::Concat: {
        const EV rhs = st.back();
        st.pop_back();
        EV& lhs = st.back();
        const unsigned lo = in.aux;
        unsigned w = lhs.w + lo;
        if (w > BatchTape::kLanes) w = BatchTape::kLanes;
        const std::int32_t rd = region_disp(n - 2);
        // High (lhs) part first, descending, exactly like the
        // interpreter: row b reads row b - lo < b, so an in-place lhs
        // is never clobbered before it is read.
        for (unsigned b = w; b-- > lo;) {
          const RowSrc a = row_of(lhs, b - lo, K);
          for (unsigned j = 0; j < K; ++j) {
            load_row(Reg::RAX, a, j);
            store_row(rd + static_cast<std::int32_t>(b * K * 8), j, Reg::RAX);
          }
        }
        const unsigned rw = lo < w ? lo : w;
        for (unsigned b = 0; b < rw; ++b) {
          const RowSrc q = row_of(rhs, b, K);
          for (unsigned j = 0; j < K; ++j) {
            load_row(Reg::RAX, q, j);
            store_row(rd + static_cast<std::int32_t>(b * K * 8), j, Reg::RAX);
          }
        }
        lhs = EV{false, Reg::RSI, rd, 0, w};
        break;
      }
      case TapeOp::Mux: {
        const EV els = st.back();
        st.pop_back();
        const EV thn = st.back();
        st.pop_back();
        EV& sel = st.back();
        accum_or(sel);  // per-lane selector truthiness in r8..
        const unsigned w = thn.w > els.w ? thn.w : els.w;
        const std::int32_t rd = region_disp(n - 3);
        for (unsigned b = 0; b < w; ++b) {
          const RowSrc t = row_of(thn, b, K);
          const RowSrc z = row_of(els, b, K);
          for (unsigned j = 0; j < K; ++j) {
            // r = z ^ (s & (t ^ z))  ==  (s & t) | (~s & z)
            load_row(Reg::RAX, t, j);
            load_row(Reg::RCX, z, j);
            e.alu_rr(Alu::Xor, Reg::RAX, Reg::RCX);
            e.alu_rr(Alu::And, Reg::RAX, creg(j));
            e.alu_rr(Alu::Xor, Reg::RAX, Reg::RCX);
            store_row(rd + static_cast<std::int32_t>(b * K * 8), j, Reg::RAX);
          }
        }
        sel = EV{false, Reg::RSI, rd, 0, w};
        break;
      }
      case TapeOp::Mul:
      case TapeOp::Shl:
      case TapeOp::Shr:
        fail("batch jit: non-parallel op in a comb classified native");
    }
  }

  // Store the result into the target net's rows (zero-fill past the
  // result width, exactly like run_planes' final copy).
  const EV res = st.back();
  const std::int32_t td =
      static_cast<std::int32_t>(std::size_t{bt_.plane_off_[c.target]} * K * 8);
  const unsigned wt = bt_.width_[c.target];
  for (unsigned b = 0; b < wt; ++b) {
    const RowSrc r = row_of(res, b, K);
    for (unsigned j = 0; j < K; ++j) {
      load_row(Reg::RAX, r, j);
      e.mov_mr(Reg::RDI, td + static_cast<std::int32_t>((b * K + j) * 8),
               Reg::RAX);
    }
  }
  ++stats_.combs_native;
  return true;
}

void BatchJit::run_all(std::uint64_t* planes, BatchStats& stats) {
  using Fn = void (*)(std::uint64_t*, std::uint64_t*);
  for (const Step& s : steps_) {
    if (s.native) {
      code_.entry<Fn>(s.arg)(planes, scratch_.data());
      ++stats_.native_calls;
    } else {
      bt_.run_comb(s.arg, planes);
      ++stats_.deopt_comb_evals;
    }
  }
  // Same per-settle accounting as BatchTape::run_all; native plane work
  // is reported through JitStats instead of plane_instructions.
  const std::uint64_t ncombs = bt_.program().combs().size();
  stats.combs_evaluated += ncombs;
  stats.combs_bit_parallel += ncombs - bt_.scalar_combs_;
  stats.combs_scalar += bt_.scalar_combs_;
  stats.scalar_lane_evals += bt_.scalar_combs_ * bt_.lanes();
  stats.plane_instructions += interp_plane_insns_;
  stats.fused_ops += interp_fused_;
  stats.scalar_ops += bt_.scalar_insns_per_lane_ * bt_.lanes();
}

}  // namespace hlcs::synth
