// Netlist optimisation: constant folding and algebraic simplification of
// the combinational logic.  The communication synthesiser generates
// regular but redundant structures (mux chains with constant selectors,
// AND with constant 1, compares of constants); this pass cleans them up
// the way the RTL front end of a downstream synthesiser would, and the
// resource report quantifies the win.
//
// Guarantee: optimize() preserves cycle-accurate behaviour (every output
// and register, every cycle).  Tests enforce this with lock-step
// simulation of the original vs optimised netlist under random stimulus.
//
// Implemented rewrites (applied bottom-up to a fixed point per node):
//   * full constant folding of every operator
//   * identity / annihilator laws: x&0, x&~0, x|0, x|~0, x^0, x+0, x-0,
//     x<<0, x>>0, mul by 0/1
//   * mux(1,a,b)=a, mux(0,a,b)=b, mux(c,a,a)=a
//   * not(not(x))=x, zext to same width = x, slice of whole = x
//   * slice(const), zext(const), concat(const,const) folded
//   * common-subexpression elimination: the output arena is hash-consed,
//     so structurally identical subexpressions (within and across comb
//     assigns) collapse to one node -- the tape compiler
//     (hlcs/synth/tape.hpp) then evaluates each shared node once
#pragma once

#include "hlcs/synth/netlist.hpp"

namespace hlcs::synth {

struct OptimizeStats {
  std::size_t nodes_before = 0;
  std::size_t nodes_after = 0;
  std::size_t folds = 0;     ///< rewrites applied
  std::size_t cse_hits = 0;  ///< nodes deduplicated by hash-consing
};

/// Return a behaviourally identical netlist with simplified
/// combinational expressions.  `stats` (optional) reports the shrink.
Netlist optimize(const Netlist& nl, OptimizeStats* stats = nullptr);

}  // namespace hlcs::synth
