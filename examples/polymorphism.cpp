// SystemC+ hardware polymorphism end to end: three "address generator"
// implementation classes behind one interface, late-bound by a type tag,
// flattened into the synthesisable subset, synthesised to RTL, checked
// for pre/post-synthesis equivalence, and emitted as Verilog plus a
// self-checking testbench.
//
// The scenario is the bus world's classic use of polymorphism: a DMA
// engine whose address sequence strategy (linear / wrapping / strided)
// is selected at runtime, with one synthesised datapath.
//
// Build & run:  ./examples/polymorphism
//   (writes addr_gen_poly.v and addr_gen_poly_tb.v)
#include <cstdio>
#include <fstream>

#include "hlcs/synth/synth.hpp"

using namespace hlcs;
using namespace hlcs::synth;

namespace {

// Interface: start(base), next() -> addr[16].
ObjectDesc linear_gen() {
  ObjectDesc d("linear");
  auto addr = d.add_var("addr", 16, 0);
  auto& A = d.arena();
  d.add_method("start").arg("base", 16).assign(addr, d.a(0, 16));
  d.add_method("next")
      .assign(addr, A.bin(ExprOp::Add, d.v(addr), d.lit(4, 16)))
      .returns(d.v(addr), 16);
  return d;
}

ObjectDesc wrapping_gen() {
  ObjectDesc d("wrap32");
  auto addr = d.add_var("addr", 16, 0);
  auto base = d.add_var("base", 16, 0);
  auto& A = d.arena();
  d.add_method("start")
      .arg("base", 16)
      .assign(addr, d.a(0, 16))
      .assign(base, d.a(0, 16));
  // Wrap inside a 32-byte window: classic cache-line wrap burst.
  ExprId inc = A.bin(ExprOp::Add, d.v(addr), d.lit(4, 16));
  ExprId off = A.bin(ExprOp::And, inc, d.lit(0x1F, 16));
  ExprId hi = A.bin(ExprOp::And, d.v(base), A.un(ExprOp::Not, d.lit(0x1F, 16)));
  d.add_method("next")
      .assign(addr, A.bin(ExprOp::Or, hi, off))
      .returns(d.v(addr), 16);
  return d;
}

ObjectDesc strided_gen() {
  ObjectDesc d("strided");
  auto addr = d.add_var("addr", 16, 0);
  auto& A = d.arena();
  d.add_method("start").arg("base", 16).assign(addr, d.a(0, 16));
  d.add_method("next")
      .assign(addr, A.bin(ExprOp::Add, d.v(addr), d.lit(64, 16)))
      .returns(d.v(addr), 16);
  return d;
}

}  // namespace

int main() {
  ObjectDesc lin = linear_gen();
  ObjectDesc wrap = wrapping_gen();
  ObjectDesc stride = strided_gen();
  PolymorphicLayout lay;
  ObjectDesc poly =
      make_polymorphic("addr_gen_poly", {&lin, &wrap, &stride}, 0, &lay);

  std::printf("polymorphic object '%s': %zu impls behind one interface\n",
              poly.name().c_str(), lay.var_base.size());
  for (const auto& m : poly.methods()) {
    std::printf("  method %-10s (%zu args, ret %ub)\n", m.name.c_str(),
                m.args.size(), m.ret_width);
  }

  // Demonstrate late binding in the interpreter.
  ObjectInterp it(poly);
  const auto start = poly.method_index("start");
  const auto next = poly.method_index("next");
  const auto set_type = poly.method_index("set_type");
  std::printf("\nlate-binding demo (start at 0x100, nine next() calls):\n");
  const char* names[] = {"linear", "wrap32", "strided"};
  for (std::uint64_t tag = 0; tag < 3; ++tag) {
    it.invoke(set_type, {tag});
    it.invoke(start, {0x100});
    std::printf("  %-8s:", names[tag]);
    for (int i = 0; i < 9; ++i) {
      std::printf(" 0x%03llx",
                  static_cast<unsigned long long>(it.invoke(next)));
    }
    std::printf("\n");
  }

  // Synthesis + resource cost of the dispatch.
  SynthOptions opt{.clients = 2};
  Netlist nl = synthesize(poly, opt);
  ResourceReport mono = report(synthesize(lin, opt));
  ResourceReport rp = report(nl);
  std::printf("\nsynthesis: monomorphic %zu FFs / ~%zu gates  vs  "
              "polymorphic %zu FFs / ~%zu gates\n",
              mono.flip_flops, mono.gate_estimate, rp.flip_flops,
              rp.gate_estimate);

  // Pre/post-synthesis consistency + downstream artefacts.
  EquivResult r = check_equivalence(poly, opt,
                                    EquivOptions{.cycles = 1000, .seed = 42});
  std::printf("equivalence vs the specification: %s (%zu cycles, %zu "
              "grants)\n",
              r ? "PASS" : "FAIL", r.cycles, r.grants);
  if (!r) std::printf("  %s\n", r.first_mismatch.c_str());

  std::ofstream("addr_gen_poly.v") << emit_verilog(nl);
  std::ofstream("addr_gen_poly_tb.v")
      << emit_verilog_testbench(nl, r.vectors);
  std::printf("wrote addr_gen_poly.v and addr_gen_poly_tb.v (self-checking "
              "bench, %zu vectors)\n",
              r.vectors.size());
  return r ? 0 : 1;
}
