// Quickstart: the paper's Figure 1 -- a shared bistable global object.
//
// Three modules connect to one global object of class Bistable.  When
// module A invokes set(), the state change is visible in the state space
// shared by all connected instances; module B's guarded call, suspended
// on get_state() == true, wakes up.  A third module uses the clocked
// variant to show the one-grant-per-cycle synchronous semantics.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "hlcs/osss/osss.hpp"
#include "hlcs/sim/sim.hpp"

using namespace hlcs;
using namespace hlcs::sim::literals;

int main() {
  sim::Kernel k;

  // ---- untimed global object (functional model) -----------------------
  osss::SharedObject<osss::Bistable> bistable(
      k, "bistable", std::make_unique<osss::FifoArbitration>());
  auto module_a = bistable.make_client("module_a");
  auto module_b = bistable.make_client("module_b");

  k.spawn("module_a", [&]() -> sim::Task {
    co_await k.wait(100_ns);
    std::printf("[%8s] module_a: set()\n", k.now().to_string().c_str());
    co_await module_a.call([](osss::Bistable& b) { b.set(); });
  });

  k.spawn("module_b", [&]() -> sim::Task {
    std::printf("[%8s] module_b: waiting for get_state()==true ...\n",
                k.now().to_string().c_str());
    // Guarded method: the caller suspends until the condition holds.
    bool state = co_await module_b.call(
        [](const osss::Bistable& b) { return b.get_state(); },
        [](osss::Bistable& b) { return b.get_state(); });
    std::printf("[%8s] module_b: observed state=%d (set by module_a)\n",
                k.now().to_string().c_str(), state);
  });

  k.run();

  // ---- clocked global object: concurrent calls queued, one grant per
  //      rising edge, scheduling policy decides the order ---------------
  sim::Clock clk(k, "clk", 10_ns);
  osss::SharedObject<int> counter(
      k, "counter", clk, std::make_unique<osss::RoundRobinArbitration>(), 0);
  for (int i = 0; i < 3; ++i) {
    auto c = counter.make_client("proc" + std::to_string(i));
    k.spawn("proc" + std::to_string(i), [&k, &counter, c, i]() -> sim::Task {
      for (int j = 0; j < 2; ++j) {
        int v = co_await c.call([](int& x) { return ++x; });
        std::printf("[%8s] proc%d: counter -> %d\n",
                    k.now().to_string().c_str(), i, v);
      }
    });
  }
  k.run_for(1_us);

  const auto& st = counter.stats();
  std::printf("\ncounter grants=%llu (policy=round_robin)\n",
              static_cast<unsigned long long>(st.grants));
  for (const auto& cs : st.clients) {
    std::printf("  %-6s calls=%llu granted=%llu max_wait=%llu cycles\n",
                cs.name.c_str(), static_cast<unsigned long long>(cs.calls),
                static_cast<unsigned long long>(cs.granted),
                static_cast<unsigned long long>(cs.wait_max));
  }
  return 0;
}
