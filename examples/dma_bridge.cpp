// A domain-specific scenario: a DMA-style bridge application copies
// blocks between two PCI targets (a fast SRAM-like device and a slow
// peripheral memory with wait states), polling a register peripheral for
// readiness -- the kind of system-level workload the paper's design flow
// is motivated by.  Two applications share ONE bus interface: their
// putCommand calls contend on the guarded global object, exactly the
// concurrency the method-call queueing resolves.
//
// Build & run:  ./examples/dma_bridge
#include <cstdio>

#include "hlcs/pattern/pattern.hpp"
#include "hlcs/sim/sim.hpp"

using namespace hlcs;
using namespace hlcs::sim::literals;

namespace {

/// A hand-written application module (not the canned Application class):
/// copies `blocks` blocks of `words` words from src to dst through the
/// guarded-method port.
class DmaCopier : public sim::Module {
public:
  DmaCopier(sim::Kernel& k, std::string name, pattern::BusInterface& iface,
            std::uint32_t src, std::uint32_t dst, std::size_t blocks,
            std::size_t words)
      : Module(k, std::move(name)),
        port_(iface.app_port(this->name())),
        src_(src),
        dst_(dst),
        blocks_(blocks),
        words_(words) {
    spawn("copy", [this]() { return run(); });
  }

  bool done() const { return done_; }
  std::uint64_t words_copied() const { return words_copied_; }

private:
  sim::Task run() {
    for (std::size_t b = 0; b < blocks_; ++b) {
      const auto off = static_cast<std::uint32_t>(b * words_ * 4);
      // Read a block from the source device...
      pattern::CommandType rd;
      rd.op = pattern::BusOp::ReadBurst;
      rd.addr = src_ + off;
      rd.count = words_;
      co_await port_.putCommand(rd);
      pattern::ResponseType block = co_await port_.appDataGet();
      if (block.status != pci::PciResult::Ok) continue;
      // ...and write it to the destination device.
      pattern::CommandType wr;
      wr.op = pattern::BusOp::WriteBurst;
      wr.addr = dst_ + off;
      wr.data = block.data;
      co_await port_.putCommand(wr);
      pattern::ResponseType ack = co_await port_.appDataGet();
      if (ack.status == pci::PciResult::Ok) words_copied_ += words_;
    }
    done_ = true;
  }

  pattern::BusAccessChannel::AppPort port_;
  std::uint32_t src_, dst_;
  std::size_t blocks_, words_;
  std::uint64_t words_copied_ = 0;
  bool done_ = false;
};

}  // namespace

int main() {
  sim::Kernel k;
  sim::Clock clk(k, "clk", 30_ns);
  pci::PciBus bus(k, "pci", clk);
  pci::PciArbiter arbiter(k, "arb", bus);
  pci::PciMonitor monitor(k, "mon", bus);

  // Fast source memory, slow destination device.
  pci::PciTarget sram(k, "sram", bus,
                      pci::TargetConfig{.base = 0x10000000, .size = 0x4000});
  pci::PciTarget slow_dev(
      k, "slow_dev", bus,
      pci::TargetConfig{.base = 0x20000000,
                        .size = 0x4000,
                        .devsel = pci::DevselSpeed::Medium,
                        .initial_wait = 2,
                        .per_word_wait = 1,
                        .disconnect_after = 8});

  pattern::PciBusInterface iface(k, "iface", bus, arbiter);

  // Pre-load the source memory.
  for (std::uint32_t w = 0; w < 512; ++w) {
    sram.memory().write_word(w * 4, 0xD0000000u + w);
  }

  // Two concurrent DMA channels sharing the interface's global object.
  DmaCopier chan_a(k, "chan_a", iface, 0x10000000, 0x20000000, 4, 16);
  DmaCopier chan_b(k, "chan_b", iface, 0x10000400, 0x20000400, 4, 16);

  k.run_for(10000_us);

  std::printf("chan_a: done=%d words=%llu\n", chan_a.done(),
              static_cast<unsigned long long>(chan_a.words_copied()));
  std::printf("chan_b: done=%d words=%llu\n", chan_b.done(),
              static_cast<unsigned long long>(chan_b.words_copied()));

  // Verify the copy.
  std::size_t errors = 0;
  for (std::uint32_t w = 0; w < 64; ++w) {
    if (slow_dev.memory().read_word(w * 4) != 0xD0000000u + w) ++errors;
    if (slow_dev.memory().read_word(0x400 + w * 4) != 0xD0000100u + w)
      ++errors;
  }
  std::printf("copy verification: %zu errors\n", errors);
  std::printf("bus: %zu tenures, %llu transfers, %llu disconnects by "
              "slow_dev, violations=%zu\n",
              monitor.records().size(),
              static_cast<unsigned long long>(monitor.transfers()),
              static_cast<unsigned long long>(
                  slow_dev.stats().disconnects_issued),
              monitor.violations().size());
  const auto& ch = iface.channel().object().stats();
  std::printf("global object: %llu grants over %zu clients\n",
              static_cast<unsigned long long>(ch.grants), ch.clients.size());

  const bool ok = chan_a.done() && chan_b.done() && errors == 0 &&
                  monitor.violations().empty();
  std::printf("\n%s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
