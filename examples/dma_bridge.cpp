// A domain-specific scenario: a DMA-style bridge application copies
// blocks between two PCI targets (a fast SRAM-like device and a slow
// peripheral memory with wait states) -- the kind of system-level
// workload the paper's design flow is motivated by.  Two applications
// share ONE bus interface: their putCommand calls contend on the guarded
// global object, exactly the concurrency the method-call queueing
// resolves.
//
// The copier itself is the library's pattern::DmaBridge (promoted from
// this example); hlcs::fabric instantiates the same class per segment to
// generate large multi-segment systems.
//
// Build & run:  ./examples/dma_bridge
#include <cstdio>

#include "hlcs/pattern/pattern.hpp"
#include "hlcs/sim/sim.hpp"

using namespace hlcs;
using namespace hlcs::sim::literals;

int main() {
  sim::Kernel k;
  sim::Clock clk(k, "clk", 30_ns);
  pci::PciBus bus(k, "pci", clk);
  pci::PciArbiter arbiter(k, "arb", bus);
  pci::PciMonitor monitor(k, "mon", bus);

  // Fast source memory, slow destination device.
  pci::PciTarget sram(k, "sram", bus,
                      pci::TargetConfig{.base = 0x10000000, .size = 0x4000});
  pci::PciTarget slow_dev(
      k, "slow_dev", bus,
      pci::TargetConfig{.base = 0x20000000,
                        .size = 0x4000,
                        .devsel = pci::DevselSpeed::Medium,
                        .initial_wait = 2,
                        .per_word_wait = 1,
                        .disconnect_after = 8});

  pattern::PciBusInterface iface(k, "iface", bus, arbiter);

  // Pre-load the source memory.
  for (std::uint32_t w = 0; w < 512; ++w) {
    sram.memory().write_word(w * 4, 0xD0000000u + w);
  }

  // Two concurrent DMA channels sharing the interface's global object.
  pattern::DmaBridge chan_a(k, "chan_a", iface, 0x10000000, 0x20000000, 4, 16);
  pattern::DmaBridge chan_b(k, "chan_b", iface, 0x10000400, 0x20000400, 4, 16);

  k.run_for(10000_us);

  std::printf("chan_a: done=%d words=%llu\n", chan_a.done(),
              static_cast<unsigned long long>(chan_a.words_copied()));
  std::printf("chan_b: done=%d words=%llu\n", chan_b.done(),
              static_cast<unsigned long long>(chan_b.words_copied()));

  // Verify the copy.
  std::size_t errors = 0;
  for (std::uint32_t w = 0; w < 64; ++w) {
    if (slow_dev.memory().read_word(w * 4) != 0xD0000000u + w) ++errors;
    if (slow_dev.memory().read_word(0x400 + w * 4) != 0xD0000100u + w)
      ++errors;
  }
  std::printf("copy verification: %zu errors\n", errors);
  std::printf("bus: %zu tenures, %llu transfers, %llu disconnects by "
              "slow_dev, violations=%zu\n",
              monitor.records().size(),
              static_cast<unsigned long long>(monitor.transfers()),
              static_cast<unsigned long long>(
                  slow_dev.stats().disconnects_issued),
              monitor.violations().size());
  const auto& ch = iface.channel().object().stats();
  std::printf("global object: %llu grants over %zu clients\n",
              static_cast<unsigned long long>(ch.grants), ch.clients.size());

  const bool ok = chan_a.done() && chan_b.done() && errors == 0 &&
                  monitor.violations().empty();
  std::printf("\n%s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
