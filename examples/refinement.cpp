// The paper's Figure 3: communication refinement by swapping the bus
// interface.  One application, two runs:
//   1. functional library element (transaction level, untimed)
//   2. pin-accurate PCI library element (cycle-accurate bus)
// The application code is untouched -- it only sees the guarded-method
// AppPort -- and the transcripts are checked for functional equivalence.
//
// Build & run:  ./examples/refinement
#include <cstdio>

#include "hlcs/pattern/pattern.hpp"
#include "hlcs/sim/sim.hpp"
#include "hlcs/tlm/stimuli.hpp"
#include "hlcs/tlm/tlm.hpp"
#include "hlcs/verify/compare.hpp"

using namespace hlcs;
using namespace hlcs::sim::literals;

int main() {
  const auto workload = tlm::random_workload(
      tlm::WorkloadConfig{.base = 0x1000, .span = 0x800, .seed = 2024}, 120);

  // ---- run 1: functional interface over TLM models ---------------------
  verify::Transcript functional;
  {
    sim::Kernel k;
    tlm::TlmMemory mem(0x1000, 0x1000);
    tlm::RegisterPeripheral periph(0x2000);
    tlm::TlmRouter router;
    router.attach(mem);
    router.attach(periph);
    pattern::FunctionalBusInterface iface(k, "iface", router);
    pattern::Application app(k, "app", iface, workload);
    k.run();
    if (!app.done()) {
      std::fprintf(stderr, "functional run did not finish\n");
      return 1;
    }
    functional = app.transcript();
    std::printf("functional model : %3zu transactions in %s simulated, "
                "%llu kernel deltas\n",
                functional.size(), functional.span().to_string().c_str(),
                static_cast<unsigned long long>(k.stats().deltas));
  }

  // ---- run 2: the SAME application over the pin-accurate element --------
  verify::Transcript pin_accurate;
  std::size_t bus_tenures = 0;
  std::size_t violations = 0;
  {
    sim::Kernel k;
    sim::Clock clk(k, "clk", 30_ns);
    pci::PciBus bus(k, "pci", clk);
    pci::PciArbiter arbiter(k, "arb", bus);
    pci::PciMonitor monitor(k, "mon", bus);
    pci::PciTarget target(k, "t0", bus,
                          pci::TargetConfig{.base = 0x1000, .size = 0x1000});
    pattern::PciBusInterface iface(k, "iface", bus, arbiter);
    pattern::Application app(k, "app", iface, workload);
    // Run in slices so the free-running clock stops soon after the
    // application finishes (otherwise deltas keep accumulating idly).
    for (int slice = 0; slice < 10000 && !app.done(); ++slice) {
      k.run_for(10_us);
    }
    if (!app.done()) {
      std::fprintf(stderr, "pin-accurate run did not finish\n");
      return 1;
    }
    pin_accurate = app.transcript();
    bus_tenures = monitor.records().size();
    violations = monitor.violations().size();
    std::printf("pin-accurate PCI : %3zu transactions in %s simulated, "
                "%llu kernel deltas, %zu bus tenures\n",
                pin_accurate.size(), pin_accurate.span().to_string().c_str(),
                static_cast<unsigned long long>(k.stats().deltas),
                bus_tenures);
  }

  // ---- the refinement check -------------------------------------------
  auto cmp = verify::compare_functional(functional, pin_accurate);
  auto timing = verify::compare_timing(functional, pin_accurate);
  std::printf("\nfunctional equivalence: %s (%zu transactions compared)\n",
              cmp ? "PASS" : "FAIL", cmp.compared);
  if (!cmp) std::printf("  first difference: %s\n", cmp.first_difference.c_str());
  std::printf("protocol violations at pin level: %zu\n", violations);
  std::printf("timing: %s\n", timing.to_string().c_str());
  return cmp && violations == 0 ? 0 : 1;
}
