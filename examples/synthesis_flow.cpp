// The paper's Figure 2 / Sec. 3 flow, end to end:
//   1. compile & simulate the executable specification (the interpreted
//      bus-access channel -- the pre-synthesis model);
//   2. run the synthesiser to get an RT-level description of the
//      communication (netlist + structural Verilog);
//   3. re-simulate the RT model and check behaviour consistency with the
//      original model.
//
// Build & run:  ./examples/synthesis_flow   (writes bus_access_channel.v)
#include <cstdio>
#include <fstream>

#include "hlcs/pattern/synthesisable_channel.hpp"
#include "hlcs/sim/random.hpp"
#include "hlcs/synth/synth.hpp"

using namespace hlcs;
using pattern::SynthesisableChannel;

int main() {
  // ---- step 0: the specification ---------------------------------------
  SynthesisableChannel ch = pattern::make_synthesisable_channel();
  std::printf("specification: object '%s', %zu state vars, %zu guarded "
              "methods\n",
              ch.desc.name().c_str(), ch.desc.vars().size(),
              ch.desc.methods().size());
  for (const auto& m : ch.desc.methods()) {
    std::printf("  %-12s args=%zu ret=%ub guard=%s\n", m.name.c_str(),
                m.args.size(), m.ret_width,
                m.guard == synth::kNoExpr
                    ? "true"
                    : synth::to_string(ch.desc.arena(), m.guard).c_str());
  }

  // ---- step 1: simulate the executable specification -------------------
  // (application + interface sides exercising the interpreted object)
  synth::ObjectInterp interp(ch.desc);
  interp.invoke(ch.methods.put_command, {0x6, 1, 0x1000});
  std::uint64_t cmd = interp.invoke(ch.methods.get_command);
  std::printf("\nstep 1: spec simulation -- putCommand/getCommand round "
              "trip: op=%u len=%u addr=0x%x\n",
              pattern::unpack_cmd_op(cmd), pattern::unpack_cmd_len(cmd),
              pattern::unpack_cmd_addr(cmd));

  // ---- step 2: synthesis to RT level ------------------------------------
  synth::SynthOptions opt{.clients = 2,
                          .policy = osss::PolicyKind::StaticPriority};
  synth::Netlist raw = synth::synthesize(ch.desc, opt);
  std::printf("\nstep 2: synthesis -- %s\n",
              synth::report(raw).to_string().c_str());
  synth::OptimizeStats ost;
  synth::Netlist nl = synth::optimize(raw, &ost);
  std::printf("        optimised -- %s (%zu rewrites, %zu -> %zu nodes)\n",
              synth::report(nl).to_string().c_str(), ost.folds,
              ost.nodes_before, ost.nodes_after);

  const std::string verilog = synth::emit_verilog(nl);
  std::ofstream("bus_access_channel.v") << verilog;
  std::printf("        structural Verilog written to bus_access_channel.v "
              "(%zu bytes)\n",
              verilog.size());

  // ---- step 3: re-simulate the RT model, check consistency --------------
  synth::NetlistSim rtl(nl);
  synth::GoldenCycleModel golden(ch.desc, opt);
  sim::Xorshift rng(42);
  std::vector<synth::GoldenCycleModel::ClientIn> in(2);
  std::vector<unsigned> blocked_for(2, 0);
  std::size_t cycles = 2000, grants = 0, mismatches = 0;
  for (std::size_t cycle = 0; cycle < cycles; ++cycle) {
    for (std::size_t c = 0; c < 2; ++c) {
      if (!in[c].req && rng.chance(1, 2)) {
        in[c].req = true;
        in[c].sel = rng.below(ch.desc.methods().size());
        in[c].args = rng.next();
        blocked_for[c] = 0;
      } else if (in[c].req && ++blocked_for[c] > 5) {
        // A real client would block forever on a guarded call; the
        // stimulus re-rolls so both models keep exercising new paths.
        in[c].sel = rng.below(ch.desc.methods().size());
        in[c].args = rng.next();
        blocked_for[c] = 0;
      }
      rtl.set_input(synth::req_port(c), in[c].req);
      rtl.set_input(synth::sel_port(c), in[c].sel);
      rtl.set_input(synth::args_port(c), in[c].args);
    }
    rtl.set_input("rst", 0);
    rtl.settle();
    std::optional<std::size_t> rtl_grant;
    for (std::size_t c = 0; c < 2; ++c) {
      if (rtl.get(synth::grant_port(c)) != 0) rtl_grant = c;
    }
    auto g = golden.step(in);
    if (rtl_grant != g.granted) ++mismatches;
    rtl.clock_edge();
    for (std::size_t v = 0; v < ch.desc.vars().size(); ++v) {
      if (rtl.get(synth::var_port(ch.desc, v)) != golden.var(v)) ++mismatches;
    }
    if (g.granted) {
      ++grants;
      in[*g.granted].req = false;
      blocked_for[*g.granted] = 0;
    }
  }
  std::printf("\nstep 3: post-synthesis simulation -- %zu cycles, %zu "
              "method grants, %zu mismatches vs the original model\n",
              cycles, grants, mismatches);
  std::printf("\nconsistency: %s\n",
              mismatches == 0 ? "PASS -- the synthesised communication "
                                "behaves exactly like the specification"
                              : "FAIL");
  return mismatches == 0 ? 0 : 1;
}
