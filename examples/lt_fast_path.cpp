// The loosely-timed fast path: the same workload run three ways.
//   1. functional library element (transaction level, per-command timed)
//   2. loosely-timed engine: quantum-decoupled local time, DMI window
//      into the memory model, guarded-method calls batched per quantum
//   3. the LT engine again with a tiny quantum, to show that shrinking
//      the quantum only adds synchronisations -- the transcript (data,
//      statuses, even the local-time stamps) is bit-identical.
// The point of the exercise is the exploitable speed: the LT run keeps
// the kernel nearly idle (one warp per quantum instead of thousands of
// scheduled events) while remaining checkably equivalent to the
// refined models.
//
// Build & run:  ./examples/lt_fast_path
#include <chrono>
#include <cstdio>

#include "hlcs/pattern/pattern.hpp"
#include "hlcs/sim/sim.hpp"
#include "hlcs/tlm/stimuli.hpp"
#include "hlcs/tlm/tlm.hpp"
#include "hlcs/verify/compare.hpp"

using namespace hlcs;
using namespace hlcs::sim::literals;

namespace {

struct LtResult {
  verify::Transcript transcript;
  tlm::TlmStats stats;
  std::uint64_t deltas = 0;
  double wall_ms = 0;
};

LtResult run_lt(const std::vector<pattern::CommandType>& workload,
                sim::Time quantum) {
  sim::Kernel k;
  tlm::TlmMemory mem(0x1000, 0x1000);
  pattern::LtConfig cfg;
  cfg.quantum = quantum;
  pattern::LtBusInterface bus(k, "lt", mem, cfg);
  pattern::LtStimuliEngine engine(bus, workload);
  const auto t0 = std::chrono::steady_clock::now();
  while (!engine.done()) k.run_for(1000_us);
  const auto t1 = std::chrono::steady_clock::now();
  return LtResult{engine.transcript(), bus.tlm_stats(), k.stats().deltas,
                  std::chrono::duration<double, std::milli>(t1 - t0).count()};
}

}  // namespace

int main() {
  const auto workload = tlm::random_workload(
      tlm::WorkloadConfig{.base = 0x1000, .span = 0x800, .seed = 2026}, 4000);

  // ---- run 1: functional element with the same per-command costs -------
  verify::Transcript functional;
  double functional_ms = 0;
  {
    sim::Kernel k;
    tlm::TlmMemory mem(0x1000, 0x1000);
    pattern::FunctionalBusInterface iface(
        k, "iface", mem,
        pattern::FunctionalTiming{.per_command = 30_ns, .per_word = 30_ns});
    pattern::Application app(k, "app", iface, workload);
    const auto t0 = std::chrono::steady_clock::now();
    while (!app.done()) k.run_for(1000_us);
    const auto t1 = std::chrono::steady_clock::now();
    functional = app.transcript();
    functional_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    std::printf("functional      : %4zu txns in %s simulated, "
                "%llu deltas, %6.2f ms wall\n",
                functional.size(), functional.span().to_string().c_str(),
                static_cast<unsigned long long>(k.stats().deltas),
                functional_ms);
  }

  // ---- runs 2 & 3: loosely timed, big and tiny quantum ------------------
  const LtResult big = run_lt(workload, 1000 * 60_ns);
  const LtResult tiny = run_lt(workload, 4 * 60_ns);
  for (const LtResult* r : {&big, &tiny}) {
    std::printf("lt quantum %4llu: %4zu txns in %s simulated, "
                "%llu deltas, %6.2f ms wall | %llu quanta, %llu syncs "
                "(%llu warps), %llu dmi hits, %llu batched calls\n",
                static_cast<unsigned long long>(r == &big ? 1000 : 4),
                r->transcript.size(), r->transcript.span().to_string().c_str(),
                static_cast<unsigned long long>(r->deltas), r->wall_ms,
                static_cast<unsigned long long>(r->stats.quanta),
                static_cast<unsigned long long>(r->stats.syncs),
                static_cast<unsigned long long>(r->stats.warps),
                static_cast<unsigned long long>(r->stats.dmi_hits),
                static_cast<unsigned long long>(
                    r->stats.batched_guarded_calls));
  }

  // ---- the consistency checks ------------------------------------------
  auto cmp = verify::compare_functional(functional, big.transcript);
  std::printf("\nlt == functional       : %s (%zu transactions)\n",
              cmp ? "PASS" : "FAIL", cmp.compared);
  if (!cmp) std::printf("  first difference: %s\n",
                        cmp.first_difference.c_str());
  bool stamps_equal =
      big.transcript.size() == tiny.transcript.size() &&
      big.transcript.span().picos() == tiny.transcript.span().picos();
  for (std::size_t i = 0; stamps_equal && i < big.transcript.size(); ++i) {
    const auto& a = big.transcript.entries()[i];
    const auto& b = tiny.transcript.entries()[i];
    stamps_equal = a.data == b.data && a.status == b.status &&
                   a.issued == b.issued && a.completed == b.completed;
  }
  std::printf("quantum-size invariance: %s (same data AND time stamps)\n",
              stamps_equal ? "PASS" : "FAIL");
  std::printf("same simulated span    : %s\n",
              big.transcript.span().picos() == functional.span().picos()
                  ? "PASS"
                  : "FAIL");
  if (functional_ms > 0 && big.wall_ms > 0) {
    std::printf("wall-clock speedup vs timed functional: %.1fx\n",
                functional_ms / big.wall_ms);
  }
  return cmp && stamps_equal ? 0 : 1;
}
