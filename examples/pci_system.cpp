// The paper's test system (Sec. 3): a high-level stimuli generator
// application drives the PCI bus-interface library element through the
// guarded-method global object; the interface translates commands into
// pin-level PCI operations against a target device.  A VCD trace of the
// bus -- the paper's Figure 4 waveforms -- is written to pci_system.vcd
// in the build's examples/ directory.
//
// Build & run:  ./examples/pci_system   (then open pci_system.vcd in GTKWave)
#include <cstdio>

#include "hlcs/pattern/pattern.hpp"
#include "hlcs/sim/sim.hpp"
#include "hlcs/verify/coverage.hpp"

using namespace hlcs;
using namespace hlcs::sim::literals;

int main() {
  sim::Kernel k;
  sim::Clock clk(k, "clk", 30_ns);  // 33 MHz PCI clock
  pci::PciBus bus(k, "pci", clk);
  pci::PciArbiter arbiter(k, "arbiter", bus);
  pci::PciMonitor monitor(k, "monitor", bus);

  // Target device: 4 KiB window at 0x4000_0000, one wait state per word.
  pci::PciTarget target(k, "target", bus,
                        pci::TargetConfig{.base = 0x40000000,
                                          .size = 0x1000,
                                          .devsel = pci::DevselSpeed::Medium,
                                          .initial_wait = 1,
                                          .per_word_wait = 1});

  // The library element: global object toward the app, pin-level PCI
  // master toward the bus.
  pattern::PciBusInterface iface(k, "iface", bus, arbiter);

  // Waveform dump (Figure 4), written under the build tree.
  sim::Trace trace(HLCS_TRACE_DIR "/pci_system.vcd");
  bus.trace_all(trace);
  k.attach_trace(trace);

  // The application: a series of bus transactions issued as guarded
  // method invocations.
  std::vector<pattern::CommandType> workload = {
      {.op = pattern::BusOp::Write, .addr = 0x40000010, .data = {0xCAFEBABE}},
      {.op = pattern::BusOp::Read, .addr = 0x40000010, .count = 1},
      {.op = pattern::BusOp::WriteBurst,
       .addr = 0x40000100,
       .data = {0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88}},
      {.op = pattern::BusOp::ReadBurst, .addr = 0x40000100, .count = 8},
      {.op = pattern::BusOp::Read, .addr = 0x40000200, .count = 1},
  };
  pattern::Application app(k, "app", iface, workload);

  k.run_for(100_us);

  if (!app.done()) {
    std::fprintf(stderr, "application did not finish!\n");
    return 1;
  }

  std::printf("application transcript:\n%s\n",
              app.transcript().to_string().c_str());

  std::printf("pin-level bus activity (%zu tenures, %llu transfers, "
              "%llu busy / %llu idle cycles):\n",
              monitor.records().size(),
              static_cast<unsigned long long>(monitor.transfers()),
              static_cast<unsigned long long>(monitor.busy_cycles()),
              static_cast<unsigned long long>(monitor.idle_cycles()));
  for (const auto& r : monitor.records()) {
    std::printf("  cycle %5llu..%-5llu %-13s @0x%08x %zu words, %llu waits, %s\n",
                static_cast<unsigned long long>(r.start_cycle),
                static_cast<unsigned long long>(r.end_cycle),
                pci::to_string(r.cmd), r.addr, r.words.size(),
                static_cast<unsigned long long>(r.wait_cycles),
                pci::to_string(r.result()));
  }

  std::printf("\nprotocol violations: %zu\n", monitor.violations().size());
  for (const auto& v : monitor.violations()) std::printf("  %s\n", v.c_str());

  verify::Coverage cov;
  cov.observe(app.transcript());
  cov.observe(monitor.records());
  std::printf("\ncoverage:\n%s\n", cov.report().c_str());

  std::printf("\nwaveforms written to %s (Figure 4)\n",
              HLCS_TRACE_DIR "/pci_system.vcd");
  return monitor.violations().empty() ? 0 : 1;
}
